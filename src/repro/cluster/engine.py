"""The data-parallel cluster engine: N replicas on one simulated clock.

:class:`ClusterEngine` runs ``dp`` tensor-parallel replicas — each a full
:class:`~repro.serving.engine.ServingEngine` over ``tp`` simulated GPU
shards — behind a pluggable :class:`~repro.cluster.router.RoutingPolicy`.
The shared clock is the workload's absolute arrival timeline: every
replica prices its steps on the same simulated time axis, so per-replica
completion times, cluster makespan (the max) and cluster throughput are
directly comparable across tp/dp/router/topology configurations.

Token-exactness across the cluster is by construction, and verified:
requests get a cluster-global id (:func:`assign_rids`) before routing,
token ids are a pure function of ``(rid, generation, position)``, so a
replica serving any subset of the workload emits exactly the tokens the
single-GPU run would (:meth:`ClusterMetrics.token_divergence` checks
every stream against a reference run's tokens).

Fault injection composes with the existing layers: ``link_faults``
install bandwidth-derating windows on the shared topology (steps priced
inside a window slow down), and ``replica_failures`` script replica
deaths (or drains).  Without :attr:`ClusterConfig.failover` a crashed
replica heals itself in place through the PR-4 checkpoint/journal path
(:class:`~repro.serving.checkpoint.CrashHarness`); with failover
configured the cluster runs the full
:mod:`repro.cluster.failover` pipeline instead — heartbeat timeout
detection, live KV migration to a healthy host over priced topology
links, and a token-exact takeover resume.  Either way the cluster
completes with ``token_divergence=0``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.failover import (
    FailoverConfig,
    FailoverController,
    MigrationError,
    ReplicaFailure,
    clamp_arrival,
    inflight_units,
    DEFAULT_UNHEALTHY_PRESSURE,
)
import numpy as np

from repro.cluster.router import (
    BreakerConfig,
    CircuitBreaker,
    LoadTracker,
    get_routing_policy,
)
from repro.cluster.topology import Topology
from repro.cluster.tp import TPInterconnect, plan_tp_sharding

__all__ = [
    "ClusterConfig",
    "ClusterEngine",
    "ClusterMetrics",
    "assign_rids",
    "expected_tokens",
]


def assign_rids(requests) -> list:
    """Arrival-sort the workload and stamp cluster-global request ids.

    The rid equals the request's index in the arrival-sorted list — the
    same index a single-GPU engine would use as its replica-local token
    key, which is what makes the single-GPU run the token oracle for any
    cluster shape.
    """
    ordered = sorted(requests, key=lambda r: r.arrival)
    return [dataclasses.replace(r, rid=i) for i, r in enumerate(ordered)]


def expected_tokens(reference) -> Dict[Tuple[int, int], list]:
    """Token oracle from a reference run over :func:`assign_rids` output:
    ``{(rid, gen_index): tokens}`` (reference ``req_id`` == rid because
    the reference serves the full sorted list)."""
    return {
        (t.req_id, t.gen_index): t.tokens
        for t in reference.traces
        if t.tokens is not None and t.req_id >= 0
    }


@dataclass
class ClusterConfig:
    """Cluster shape and policy knobs."""

    #: Tensor-parallel shards per replica (must divide the model's QO heads).
    tp: int = 1
    #: Data-parallel replicas behind the router.
    dp: int = 1
    #: Interconnect preset (:data:`repro.cluster.topology.TOPOLOGY_PRESETS`).
    topology: str = "nvlink"
    #: Routing policy name (:func:`repro.cluster.router.get_routing_policy`).
    router: str = "round-robin"
    #: Seed for router randomness (power-of-two probing).
    router_seed: int = 0
    #: Per-replica engine template; ``tensor_parallel`` is overridden by
    #: :attr:`tp`.  ``None`` uses :class:`EngineConfig` defaults.
    engine: Optional[object] = None
    #: Record deterministic token ids on every replica (turns on the
    #: resilience layer's token recording; required for divergence checks).
    record_tokens: bool = True
    #: Snapshot cadence for replicas (0 = off unless a replica has a crash
    #: script, which forces a default cadence of 4).
    checkpoint_every: int = 0
    #: Failover policy (:class:`repro.cluster.failover.FailoverConfig`).
    #: ``None`` (the default) disables the subsystem entirely — scripted
    #: replica crashes then recover in place via the PR-4 harness and the
    #: run is bit-identical to the pre-failover engine.
    failover: Optional[FailoverConfig] = None
    #: Overload front-door policy
    #: (:class:`repro.serving.overload.OverloadConfig`).  ``None`` (the
    #: default) disables the whole overload layer — no admission gate, no
    #: client retries, no breakers, no hedging, no brownout — and the run
    #: is bit-identical to the pre-overload engine.
    overload: Optional[object] = None
    #: Disaggregated prefill/decode role partition of the dp replicas:
    #: ``"prefill=N,decode=M"``, a ``{"prefill": N, "decode": M}`` dict of
    #: pool sizes, or explicit replica-id lists (see
    #: :func:`repro.cluster.disagg.parse_roles`).  ``None`` (the default)
    #: keeps every replica colocated — byte-identical to pre-disagg runs.
    roles: Optional[object] = None


@dataclass
class ClusterMetrics:
    """Per-replica metrics plus cluster-level aggregation."""

    tp: int
    dp: int
    router: str
    topology: Topology
    replicas: List[object]  # ServingMetrics per replica
    #: Each replica's (arrival-sorted) request list; maps a trace's
    #: replica-local ``req_id`` back to the cluster-global ``rid``.
    replica_requests: List[list]
    #: Routed replica per request, in cluster arrival order.
    assignments: List[int]
    #: Per-replica :class:`~repro.serving.checkpoint.CrashReport` for
    #: replicas that ran under a crash script (``None`` entries otherwise).
    crash_reports: Optional[List[object]] = None
    #: :class:`~repro.cluster.failover.FailoverReport` when the run had
    #: failover configured; ``None`` otherwise (summaries unchanged).
    failover: Optional[object] = None
    #: Arrivals held at the front door because every replica was
    #: unhealthy (queued until the first rejoin, never dropped).
    held_requests: int = 0
    #: :class:`~repro.serving.overload.OverloadReport` when the run had
    #: the overload layer configured; ``None`` otherwise (summaries
    #: unchanged).
    overload: Optional[object] = None
    #: :class:`~repro.cluster.disagg.DisaggReport` when the run used
    #: disaggregated role pools; ``None`` otherwise (summaries unchanged).
    disagg: Optional[object] = None

    @property
    def merged(self):
        """Cluster-wide :class:`~repro.serving.metrics.ServingMetrics`."""
        from repro.serving.metrics import ServingMetrics

        return ServingMetrics.merge(self.replicas)

    @property
    def total_time(self) -> float:
        """Cluster makespan: the slowest replica's completion time."""
        return max((m.total_time for m in self.replicas), default=0.0)

    def throughput_tokens_per_s(self) -> float:
        total = sum(m.total_output_tokens for m in self.replicas)
        makespan = self.total_time
        return total / makespan if makespan > 0 else 0.0

    def token_divergence(
        self, expected: Dict[Tuple[int, int], list]
    ) -> Tuple[int, int]:
        """Compare every completed stream against the token oracle.

        Returns ``(divergent, compared)``; divergent must be 0 for any
        healthy cluster, whatever the tp/dp/router/topology — and after
        replica crash recovery.
        """
        divergent = compared = 0
        for requests, metrics in zip(self.replica_requests, self.replicas):
            for tr in metrics.traces:
                if tr.tokens is None or tr.req_id < 0:
                    continue
                rid = requests[tr.req_id].rid
                if rid is None:
                    continue
                want = expected.get((rid, tr.gen_index))
                if want is None:
                    continue
                compared += 1
                if tr.tokens != want:
                    divergent += 1
        return divergent, compared

    def summary(self) -> Dict[str, float]:
        """``cluster_*`` counters, per-replica lines, per-link utilization."""
        makespan = self.total_time
        out: Dict[str, float] = {
            "cluster_tp": float(self.tp),
            "cluster_dp": float(self.dp),
            "cluster_world": float(self.tp * self.dp),
            "cluster_total_time": makespan,
            "cluster_throughput_tok_s": self.throughput_tokens_per_s(),
            "cluster_output_tokens": float(
                sum(m.total_output_tokens for m in self.replicas)
            ),
            "cluster_requests": float(sum(len(m.traces) for m in self.replicas)),
            "cluster_preemptions": float(sum(m.preemptions for m in self.replicas)),
            "cluster_sheds": float(sum(m.sheds for m in self.replicas)),
            "cluster_recover_resumed": float(
                sum(m.recover_resumed for m in self.replicas)
            ),
        }
        # Cluster-wide latency percentiles over the merged traces — the
        # observable disagg (and any routing policy) actually moves.
        merged = self.merged
        for q in (50, 95, 99):
            out[f"cluster_p{q}_ttft"] = merged.ttft_percentile(q)
            out[f"cluster_p{q}_itl"] = merged.itl_percentile(q)
        for i, m in enumerate(self.replicas):
            out[f"replica{i}_requests"] = float(len(m.traces))
            out[f"replica{i}_output_tokens"] = float(m.total_output_tokens)
            out[f"replica{i}_total_time"] = m.total_time
            out[f"replica{i}_throughput_tok_s"] = m.throughput_tokens_per_s()
            # Replica utilization: busy fraction of the cluster makespan.
            out[f"replica{i}_utilization"] = (
                m.total_time / makespan if makespan > 0 else 0.0
            )
        radix_tokens = sum(m.radix_hit_tokens for m in self.replicas)
        cascade_steps = sum(m.cascade_steps for m in self.replicas)
        if radix_tokens or cascade_steps:
            # Prefix-cache counters only when something hit, so cold-cache
            # summaries stay byte-identical.
            out["cluster_radix_hit_tokens"] = float(radix_tokens)
            out["cluster_radix_hit_prompts"] = float(
                sum(m.radix_hit_prompts for m in self.replicas)
            )
            out["cluster_cascade_steps"] = float(cascade_steps)
            out["cluster_cascade_bytes_saved"] = float(
                sum(m.cascade_bytes_saved for m in self.replicas)
            )
        if self.crash_reports is not None:
            out["cluster_crashes"] = float(
                sum(r.crashes for r in self.crash_reports if r is not None)
            )
            out["cluster_recoveries"] = float(
                sum(r.recoveries for r in self.crash_reports if r is not None)
            )
        if self.held_requests:
            out["cluster_held_requests"] = float(self.held_requests)
        if self.failover is not None:
            # Failover/migration counters, only on failover-enabled runs.
            out.update(self.failover.summary())
            for i, p in enumerate(self.failover.admission_pressure):
                out[f"replica{i}_admission_pressure"] = float(p)
        if self.overload is not None:
            # Front-door/breaker/brownout/SLO counters, only on overload runs.
            out.update(self.overload.summary())
        if self.disagg is not None:
            # Role-pool and KV-handoff counters, only on disagg runs; the
            # matching wire accounting is link_stats' link_handoff_*.
            out.update(self.disagg.summary())
        out.update(self.topology.link_stats(makespan=makespan))
        return out


class ClusterEngine:
    """Route a workload across ``dp`` tensor-parallel serving replicas.

    ``backend_factory(heads, gpu)`` builds each replica's attention
    backend from the per-shard head config (default FlashInfer).
    ``trace=True`` attaches one :class:`~repro.obs.StepTracer` per
    replica (:meth:`trace_processes` feeds
    :func:`repro.obs.write_cluster_trace`).  ``link_faults`` is a
    sequence of ``(t_start, t_end, factor)`` bandwidth deratings on the
    shared topology.

    ``replica_failures`` maps replica index → a
    :class:`~repro.cluster.failover.ReplicaFailure` (or a sequence of
    them) scripting a crash or drain at an engine step; seeded-random
    replica deaths come from ``fault_plan``'s ``replica`` site (one draw
    per replica per run).  With :attr:`ClusterConfig.failover` set,
    failures go through detection → KV migration → takeover; without
    it, crashes recover in place via
    :class:`~repro.serving.checkpoint.CrashHarness` (drains then raise —
    a drain *is* a migration).  ``fault_plan``'s ``link`` site injects
    transfer faults into migrations.  ``health_schedule`` feeds known
    unhealthy windows into the routing pass (skip, backpressure, and
    hold-at-the-door when everything is down).

    ``replica_crashes`` — the pre-failover spelling of scripted crashes —
    was removed after its deprecation window; passing it raises
    :class:`TypeError` with the ``replica_failures`` migration hint.

    With :attr:`ClusterConfig.roles` set the cluster runs *disaggregated*:
    prefill-pool replicas run prompts only and hand the finished KV off to
    paired decode-pool replicas over priced ``kind="handoff"`` links (see
    :mod:`repro.cluster.disagg`), token-exact vs the colocated reference.
    """

    def __init__(
        self,
        model,
        gpu,
        config: Optional[ClusterConfig] = None,
        backend_factory=None,
        trace: bool = False,
        link_faults: Sequence[Tuple[float, float, float]] = (),
        replica_crashes: Optional[Dict[int, Sequence[Tuple[int, str]]]] = None,
        replica_failures: Optional[Dict[int, object]] = None,
        fault_plan=None,
        health_schedule=None,
    ):
        self.model = model
        self.gpu = gpu
        self.config = config or ClusterConfig()
        cfg = self.config
        if cfg.tp < 1 or cfg.dp < 1:
            raise ValueError("tp and dp must be >= 1")
        #: Validated head sharding (raises on non-divisible tp up front).
        self.sharding = plan_tp_sharding(model, cfg.tp)
        self.topology = Topology.preset(cfg.topology, world=cfg.tp * cfg.dp)
        for t0, t1, factor in link_faults:
            self.topology.degrade(t0, t1, factor)
        #: Resolved routing policy (raises on an unknown name).
        self.router = get_routing_policy(cfg.router)
        if backend_factory is None:
            from repro.serving.backends import FlashInferBackend

            backend_factory = FlashInferBackend
        self.backend_factory = backend_factory
        #: Disaggregated role partition ``(prefill_ids, decode_ids)``, or
        #: ``None`` for the colocated cluster.
        self.roles: Optional[Tuple[Tuple[int, ...], Tuple[int, ...]]] = None
        if cfg.roles is not None:
            from repro.cluster.disagg import parse_roles

            self.roles = parse_roles(cfg.roles, cfg.dp)
            if cfg.router == "round-robin":
                # The colocated default router is meaningless under role
                # pools; upgrade to the pairing policy.
                self.router = get_routing_policy("disagg")
            elif cfg.router != "disagg":
                raise ValueError(
                    f"ClusterConfig(roles=...) requires the 'disagg' router "
                    f"(or leaving the default), got {cfg.router!r}"
                )
            self.router.bind_roles(*self.roles)
        elif cfg.router == "disagg":
            raise ValueError(
                "the 'disagg' router needs ClusterConfig(roles=...) to "
                "define its prefill/decode pools"
            )
        #: rid → paired decode replica (populated by route() in disagg mode).
        self._decode_assignments: Dict[int, int] = {}
        # Disagg side tables _make_engine reads, so the plain, crash-harness
        # and failover-takeover construction paths all get role wiring for
        # free; empty dicts on colocated runs.
        self._engine_roles: Dict[int, str] = {}
        self._engine_sinks: Dict[int, object] = {}
        self._engine_imports: Dict[int, dict] = {}
        self._disagg_report = None
        #: Test hook: handoff indices (in ship order) to tamper in flight.
        self._corrupt_handoffs: Sequence[int] = ()
        if replica_crashes is not None:
            raise TypeError(
                "replica_crashes= was removed (deprecated since the "
                "failover release); pass replica_failures={replica: "
                "[ReplicaFailure(step, 'crash', phase), ...]} instead"
            )
        #: Normalized ``{replica: [ReplicaFailure, ...]}``.
        self.replica_failures: Dict[int, List[ReplicaFailure]] = {}
        for r, fs in (replica_failures or {}).items():
            if isinstance(fs, ReplicaFailure):
                fs = [fs]
            self.replica_failures[int(r)] = [f for f in fs]
        #: Cluster-level :class:`~repro.faults.FaultPlan` (``replica`` and
        #: ``link`` sites); independent of any per-engine chaos plan.
        self.fault_plan = fault_plan
        #: Optional :class:`~repro.cluster.failover.HealthSchedule` the
        #: routing pass consults.
        self.health_schedule = health_schedule
        self._held_requests = 0
        # Overload-layer state, populated by route()/run() when
        # ``config.overload`` is set; None/empty otherwise.
        self._overload_report = None
        self._breakers: Optional[List[CircuitBreaker]] = None
        self._brownouts: Dict[int, object] = {}
        self.tracers = None
        if trace:
            from repro.obs.tracer import StepTracer

            self.tracers = [StepTracer() for _ in range(cfg.dp)]

    # -- construction helpers --------------------------------------------------

    @classmethod
    def from_config(cls, config: Optional["ClusterConfig"] = None, *,
                    model=None, gpu=None, **kwargs) -> "ClusterEngine":
        """Build a cluster engine with the stock model/GPU defaults.

        The cluster-shape counterpart of
        :meth:`repro.serving.engine.ServingEngine.from_config` — one call
        site for the CLI, benchmarks and tests, with the same defaults
        (LLAMA_3_1_8B on an H100)."""
        from repro.gpu.spec import H100_80G
        from repro.serving.model import LLAMA_3_1_8B

        model = model if model is not None else LLAMA_3_1_8B
        gpu = gpu if gpu is not None else H100_80G
        return cls(model, gpu, config, **kwargs)

    def _engine_config(self):
        from repro.serving.engine import EngineConfig

        template = self.config.engine if self.config.engine is not None else EngineConfig()
        return dataclasses.replace(template, tensor_parallel=self.config.tp)

    def _nominal_service_rate(self) -> float:
        """Deterministic decode-rate estimate (tokens/s per replica) for
        the router's fluid load model: the non-attention roofline at a
        nominal batch of 16 (what a front-end can estimate offline —
        deliberately not a peek into live engine state)."""
        m, gpu, tp = self.model, self.gpu, self.config.tp
        batch = 16
        step = (
            m.num_layers * m.layer_nonattn_time(batch, gpu, 0.85, tp)
            + m.lm_head_time(batch, gpu, 0.85, tp)
        )
        return batch / step

    def _make_engine(self, replica: int, tracer=None, checkpoint=None, store=None):
        from repro.faults.recover import ResilienceConfig
        from repro.serving.engine import ServingEngine

        cfg = self._engine_config()
        interconnect = (
            TPInterconnect(self.topology, self.model, cfg.tensor_parallel)
            if cfg.tensor_parallel > 1
            else None
        )
        resilience = ResilienceConfig() if self.config.record_tokens else None
        engine = ServingEngine.from_config(
            cfg, model=self.model, gpu=self.gpu,
            backend_factory=self.backend_factory,
            tracer=tracer, resilience=resilience,
            checkpoint=checkpoint, checkpoint_store=store,
            interconnect=interconnect,
        )
        engine.dp_world = self.config.dp
        engine.dp_rank = replica
        if self._engine_roles:
            # Disagg wiring rides the side tables so every construction
            # path — plain, crash harness, failover takeover — gets the
            # replica's role, sink and imports without special-casing.
            engine.role = self._engine_roles.get(replica)
            engine.handoff_sink = self._engine_sinks.get(replica)
            engine._handoff_imports = self._engine_imports.get(replica)
        if self.config.overload is not None:
            from repro.serving.overload import BrownoutController

            engine.track_pressure = True
            engine.brownout = BrownoutController.from_config(self.config.overload)
            # Last engine built for a replica owns its brownout stats (a
            # failover takeover replaces the dead replica's controller).
            self._brownouts[replica] = engine.brownout
        return engine

    # -- the cluster run -------------------------------------------------------

    def route(self, requests) -> Tuple[List[list], List[int]]:
        """Assign rids and split the workload across replicas.

        Returns ``(per_replica_requests, assignments)``; each replica list
        stays arrival-sorted (routing walks the global arrival order).
        With a ``health_schedule``, the pass skips replicas that are down
        at a request's arrival (backpressuring them in the load tracker),
        and when *every* replica is down it holds the arrival at the
        front door until the first rejoin — queued, never dropped.

        With :attr:`ClusterConfig.overload` set, the workload first passes
        the tenant-aware :class:`~repro.serving.overload.FrontDoor`
        (rate-limit + seeded client retries), per-replica
        :class:`~repro.cluster.router.CircuitBreaker` masks fold into the
        health mask, seeded dispatch timeouts strike breakers and
        re-dispatch, and slow dispatches hedge onto a second replica —
        every re-arrival via ``clamp_arrival`` (rid unchanged, so tokens
        are unchanged by construction).
        """
        cfg = self.config
        reqs = assign_rids(requests)
        overload = cfg.overload
        report = None
        breakers = None
        if overload is not None:
            from repro.serving.overload import FrontDoor

            reqs, report = FrontDoor(overload).admit(reqs)
            bcfg = (
                overload.breaker if overload.breaker is not None
                else BreakerConfig()
            )
            breakers = [CircuitBreaker(j, bcfg) for j in range(cfg.dp)]
            self._brownouts = {}
        self._overload_report = report
        self._breakers = breakers
        disagg = self.roles is not None
        self._decode_assignments = {}
        self.router.reset(cfg.dp, cfg.router_seed)
        tracker = LoadTracker(cfg.dp, self._nominal_service_rate())
        schedule = self.health_schedule
        plan = self.fault_plan
        timeout_armed = (
            breakers is not None and plan is not None and plan.armed("timeout")
        )
        per_replica: List[list] = [[] for _ in range(cfg.dp)]
        assignments: List[int] = []
        held = 0
        waits: List[float] = []  # estimated dispatch waits (hedge history)
        for r in reqs:
            healthy = None
            if schedule is not None:
                healthy = schedule.mask(r.arrival)
                if not any(healthy):
                    # All replicas down: hold the request until the first
                    # one rejoins (rid unchanged, so tokens are unchanged).
                    t_rejoin, who = schedule.next_recovery(r.arrival)
                    if who is not None:
                        r = clamp_arrival(r, t_rejoin)
                        healthy = schedule.mask(r.arrival)
                        held += 1
            if breakers is not None:
                allow = [b.allow(r.arrival) for b in breakers]
                if healthy is not None:
                    allow = [h and a for h, a in zip(healthy, allow)]
                if any(allow):
                    healthy = allow
                # else: every breaker open too — keep the schedule mask
                # (possibly None) so the request is still placed; a breaker
                # never drops work, it only steers it.
            if healthy is not None:
                for j in range(cfg.dp):
                    tracker.set_pressure(
                        j, 0.0 if healthy[j] else DEFAULT_UNHEALTHY_PRESSURE
                    )
            tracker.observe(r.arrival)
            loads = tracker.loads()
            choice = int(self.router.route(r, r.arrival, loads, healthy))
            if not 0 <= choice < cfg.dp:
                raise ValueError(
                    f"router {self.router.name!r} chose replica {choice} "
                    f"outside [0, {cfg.dp})"
                )
            if breakers is not None:
                r, choice = self._overload_dispatch(
                    r, choice, healthy, breakers, loads,
                    tracker.service_rate, waits, report, timeout_armed,
                )
            per_replica[choice].append(r)
            assignments.append(choice)
            if disagg:
                # The prompt compute lands on the prefill replica; the
                # decode work lands on the paired decode replica, chosen
                # least-loaded-healthy within its pool now so later
                # arrivals see the decode pool's true outstanding work.
                pair = int(self.router.pair(r, r.arrival, loads, healthy))
                self._decode_assignments[r.rid] = pair
                tracker.assign(choice, float(r.prompt_len))
                tracker.assign(pair, float(r.output_len * r.n))
            else:
                tracker.assign(choice, r.prompt_len + r.output_len * r.n)
        self._held_requests = held
        if held or breakers is not None:
            # Clamped arrivals (holds, retries, timeouts, hedges) can land
            # past later requests routed to the same replica; engines
            # expect arrival-sorted input.
            for lst in per_replica:
                lst.sort(key=lambda q: q.arrival)
        return per_replica, assignments

    def _overload_dispatch(
        self, r, choice, mask, breakers, loads, service_rate, waits,
        report, timeout_armed,
    ):
        """Breaker strikes, seeded timeout re-dispatch, and hedged prefill
        for one routed request; returns the (possibly re-timed) request
        and its final replica.  Deterministic, and token-exact by
        construction: only arrivals shift, never rids."""
        overload = self.config.overload
        bcfg = breakers[choice].config
        dp = self.config.dp
        t = r.arrival
        # Under disagg, re-dispatch and hedging stay within the prefill
        # pool — a decode replica never prefills.
        pool = self.roles[0] if self.roles is not None else range(dp)

        def alternates(exclude: int) -> List[int]:
            return [
                j for j in pool
                if j != exclude
                and (mask is None or mask[j])
                and breakers[j].state != "open"
            ]

        # Seeded dispatch timeout: the replica never acked this dispatch.
        # Strike its breaker and resend to the best alternate after the
        # client's timeout penalty.
        timed_out = timeout_armed and self.fault_plan.fire("timeout")
        if timed_out:
            report.timeouts += 1
            breakers[choice].record_failure(t, "timeout")
            alts = alternates(choice)
            if alts:
                t = t + bcfg.timeout_penalty
                r = clamp_arrival(r, t)
                choice = min(alts, key=lambda j: (loads[j], j))
                report.reroutes += 1
        else:
            # Pressure signal: estimated backlog ahead of this dispatch.
            if loads[choice] / service_rate > bcfg.pressure_threshold:
                breakers[choice].record_failure(t, "pressure")
            else:
                breakers[choice].record_success(t)
        est_wait = loads[choice] / service_rate
        # Hedged prefill: when the estimated start lags the hedge quantile
        # of observed waits, issue a duplicate on the best alternate after
        # the quantile delay and keep whichever copy starts first.  The
        # loser is cancelled before doing any work (zero cost), so exactly
        # one replica ever prefills this rid — token-exact either way.
        if (
            overload.hedge
            and len(waits) >= overload.hedge_min_samples
            and est_wait > 0
        ):
            delay = float(np.quantile(waits, overload.hedge_quantile))
            if est_wait > delay:
                alts = alternates(choice)
                if alts:
                    second = min(alts, key=lambda j: (loads[j], j))
                    est_second = delay + loads[second] / service_rate
                    report.hedged += 1
                    if est_second < est_wait:
                        # Secondary starts first: it wins; the primary
                        # copy is cancelled unstarted.
                        r = clamp_arrival(r, t + delay)
                        choice = second
                        report.hedge_wins += 1
        waits.append(loads[choice] / service_rate)
        return r, choice

    def _resolve_failures(self) -> Dict[int, List[ReplicaFailure]]:
        """Scripted failures plus seeded-random draws from the fault
        plan's ``replica`` site (one draw per replica per run)."""
        failures = {r: list(fs) for r, fs in self.replica_failures.items()}
        plan = self.fault_plan
        if plan is not None and plan.armed("replica"):
            for r in range(self.config.dp):
                if plan.fire("replica") and r not in failures:
                    step = 1 + plan.choose("replica", 12)
                    failures[r] = [ReplicaFailure(step, "crash", "boundary")]
        return failures

    def run(self, requests) -> ClusterMetrics:
        """Serve the workload across the cluster; returns cluster metrics."""
        cfg = self.config
        per_replica, assignments = self.route(requests)
        failures = self._resolve_failures()
        controller = None
        if cfg.failover is not None:
            controller = FailoverController(
                cfg.failover, self.topology, cfg.dp,
                fault_plan=self.fault_plan, tracers=self.tracers,
            )
            for r, fs in failures.items():
                if len(fs) > 1:
                    raise ValueError(
                        f"replica {r}: failover supports one failure per "
                        f"replica per run (got {len(fs)})"
                    )
        else:
            for r, fs in failures.items():
                for f in fs:
                    if f.mode == "drain":
                        raise ValueError(
                            f"replica {r}: drain requires ClusterConfig."
                            f"failover (a drain is a KV handoff)"
                        )
        crash_reports: Optional[List[object]] = (
            [None] * cfg.dp if failures and controller is None else None
        )
        # Token work routed to each replica — the controller's load
        # signal for picking migration targets.  Disagg splits each
        # request's work across its prefill/decode pair.
        if self.roles is not None:
            assigned_tokens = [0.0] * cfg.dp
            for lst in per_replica:
                for r in lst:
                    assigned_tokens[
                        self._decode_assignments[r.rid]
                    ] += float(r.output_len * r.n)
            for i, lst in enumerate(per_replica):
                assigned_tokens[i] += float(sum(r.prompt_len for r in lst))
        else:
            assigned_tokens = [
                float(sum(r.prompt_len + r.output_len * r.n for r in lst))
                for lst in per_replica
            ]
        failing = frozenset(failures)
        replica_metrics: List[object] = [None] * cfg.dp
        if self.roles is None:
            for i in range(cfg.dp):
                replica_metrics[i] = self._run_replica(
                    i, per_replica, failures, controller, assigned_tokens,
                    failing, crash_reports,
                )
        else:
            per_replica = self._run_disagg_waves(
                per_replica, failures, controller, assigned_tokens,
                failing, crash_reports, replica_metrics,
            )
        failover_report = None
        if controller is not None:
            controller.report.held_requests = self._held_requests
            controller.report.admission_pressure = [
                m.admission_pressure for m in replica_metrics
            ]
            failover_report = controller.finish()
        cm = ClusterMetrics(
            tp=cfg.tp, dp=cfg.dp, router=self.router.name,
            topology=self.topology, replicas=replica_metrics,
            replica_requests=per_replica, assignments=assignments,
            crash_reports=crash_reports, failover=failover_report,
            held_requests=self._held_requests,
            overload=self._overload_report,
            disagg=self._disagg_report,
        )
        if self._overload_report is not None:
            report = self._overload_report
            report.attach_breakers(self._breakers or ())
            report.attach_brownouts(
                [self._brownouts.get(i) for i in range(cfg.dp)]
            )
            report.finalize_slo(cm)
        return cm

    def _run_replica(
        self,
        i: int,
        per_replica: List[list],
        failures: Dict[int, List[ReplicaFailure]],
        controller: Optional[FailoverController],
        assigned_tokens: List[float],
        failing: frozenset,
        crash_reports: Optional[List[object]],
    ):
        """One replica through whichever pipeline its failure script needs:
        failover, in-place crash harness, or a plain run."""
        from repro.serving.checkpoint import (
            CheckpointConfig,
            CheckpointStore,
            CrashHarness,
        )

        cfg = self.config
        tracer = self.tracers[i] if self.tracers is not None else None
        script = failures.get(i)
        if script and controller is not None:
            return self._run_with_failover(
                i, per_replica, script[0], controller, assigned_tokens,
                failing,
            )
        if script:
            store = CheckpointStore()
            every = cfg.checkpoint_every if cfg.checkpoint_every > 0 else 4
            ckpt = CheckpointConfig(every_steps=every)

            def factory(i=i, tracer=tracer, ckpt=ckpt, store=store):
                return self._make_engine(i, tracer, ckpt, store)

            report = CrashHarness(
                factory, per_replica[i], store,
                crash_script=[(f.step, f.phase) for f in script],
            ).run()
            crash_reports[i] = report
            return report.metrics
        ckpt = store = None
        if cfg.checkpoint_every > 0:
            ckpt = CheckpointConfig(every_steps=cfg.checkpoint_every)
            store = CheckpointStore()
        engine = self._make_engine(i, tracer, ckpt, store)
        if controller is not None:
            engine.track_pressure = True
        return engine.run(per_replica[i])

    def _run_disagg_waves(
        self,
        per_replica: List[list],
        failures: Dict[int, List[ReplicaFailure]],
        controller: Optional[FailoverController],
        assigned_tokens: List[float],
        failing: frozenset,
        crash_reports: Optional[List[object]],
        replica_metrics: List[object],
    ) -> List[list]:
        """The disaggregated run: prefill wave → KV shipping → decode wave.

        Wave 1 runs every prefill-pool replica; each finished prompt lands
        in its replica's :class:`~repro.cluster.disagg.HandoffSink` instead
        of decoding locally (a failover takeover or crash-harness restore
        re-fires into the *same* sink, whose ``(rid, gen)`` keying dedups
        the re-executed spawns — a dying prefill replica's in-flight
        handoffs are recomputed, never lost).  The coordinator then ships
        every handoff over the topology as priced ``kind="handoff"``
        chunks.  Wave 2 rebuilds each decode replica's request list —
        arrival clamped to when its last handoff chunk cleared the wire —
        and runs the decode pool, which absorbs the imports and resumes
        each stream token-exactly.  Returns the updated ``per_replica``
        (decode lists replace the empty routed ones, so trace/req_id →
        rid mapping stays correct for the divergence check).
        """
        from repro.cluster.disagg import (
            DisaggCoordinator,
            DisaggReport,
            HandoffSink,
        )

        cfg = self.config
        prefill_ids, decode_ids = self.roles
        ecfg = self._engine_config()
        prefix_on = bool(ecfg.prefix_cache or ecfg.prefix_caching)
        self._engine_roles = {}
        self._engine_sinks = {}
        self._engine_imports = {}
        for i in prefill_ids:
            self._engine_roles[i] = "prefill"
            self._engine_sinks[i] = HandoffSink(
                i, self._decode_assignments, prefix_caching=prefix_on
            )
        for i in decode_ids:
            self._engine_roles[i] = "decode"
        prefill_set = frozenset(prefill_ids)
        decode_set = frozenset(decode_ids)
        for i in prefill_ids:
            # A failing prefill replica must never migrate onto a decode
            # replica (and vice versa): exclude the other pool.
            replica_metrics[i] = self._run_replica(
                i, per_replica, failures, controller, assigned_tokens,
                failing | decode_set, crash_reports,
            )
        report = DisaggReport(
            prefill_replicas=prefill_ids, decode_replicas=decode_ids
        )
        coordinator = DisaggCoordinator(
            self.topology, cfg.failover, self.fault_plan,
            prefix_caching=prefix_on,
        )
        handoffs = []
        for i in prefill_ids:
            handoffs.extend(self._engine_sinks[i].handoffs.values())
        imports_by_target = coordinator.ship(
            handoffs, report, corrupt_handoffs=self._corrupt_handoffs
        )
        self._disagg_report = report
        rid_to_req = {
            r.rid: r for i in prefill_ids for r in per_replica[i]
        }
        for i in decode_ids:
            by_rid: Dict[int, list] = {}
            for imp in imports_by_target.get(i, []):
                by_rid.setdefault(imp.rid, []).append(imp)
            reqs = []
            for rid, lst in by_rid.items():
                # The stream cannot resume before its last chunk lands.
                t_avail = max(x.t_available for x in lst)
                reqs.append(clamp_arrival(rid_to_req[rid], t_avail))
            reqs.sort(key=lambda q: (q.arrival, q.rid))
            per_replica[i] = reqs
            self._engine_imports[i] = {
                idx: sorted(by_rid[q.rid], key=lambda x: x.gen)
                for idx, q in enumerate(reqs)
            }
        for i in decode_ids:
            replica_metrics[i] = self._run_replica(
                i, per_replica, failures, controller, assigned_tokens,
                failing | prefill_set, crash_reports,
            )
        return per_replica

    def _run_with_failover(
        self,
        i: int,
        per_replica: List[list],
        failure: ReplicaFailure,
        controller: FailoverController,
        assigned_tokens: List[float],
        failing: frozenset,
    ):
        """One replica through the full failover pipeline.

        The replica runs under a checkpoint cadence with a scripted
        failure; its heartbeat trail feeds the detector (back-dated, so
        detection timestamps are polling-independent); its latest
        snapshot is recovered, migrated to the least-loaded healthy host
        (chunked + checksummed + priced on the topology), and resumed
        there token-exactly.  No healthy target, or migration retries
        exhausted → in-place fallback through the same recovery path.
        """
        from repro.kvcache.paged import PagedKVCache
        from repro.serving.checkpoint import (
            CheckpointConfig,
            CheckpointStore,
            EngineCrash,
            RecoveryManager,
        )

        cfg = self.config
        tracer = self.tracers[i] if self.tracers is not None else None
        store = CheckpointStore()
        every = cfg.checkpoint_every if cfg.checkpoint_every > 0 else 4
        ckpt = CheckpointConfig(every_steps=every)
        engine = self._make_engine(i, tracer, ckpt, store)
        engine.track_pressure = True
        heartbeats: List[float] = []
        engine.heartbeat = heartbeats.append
        engine._crash_script = {(failure.step, failure.phase)}
        try:
            return engine.run(per_replica[i])
        except EngineCrash as crash:
            t_fail = crash.t

        t_dead = controller.observe_failure(i, heartbeats, t_fail, failure.mode)
        recovered = RecoveryManager(store, requests=per_replica[i]).recover()
        host = i
        resume_at = t_dead + controller.config.rejoin_delay
        target = controller.pick_target(i, assigned_tokens, exclude=failing)
        if target is None:
            controller.note_fallback(i, t_dead, "no healthy migration target")
        else:
            try:
                snap, mreport = controller.migrate(
                    recovered.snapshot, t_dead, source=i, target=target
                )
            except MigrationError as exc:
                controller.note_fallback(i, t_dead, str(exc))
            else:
                cache = PagedKVCache.from_state(snap["cache"])
                recovered = dataclasses.replace(
                    recovered, snapshot=snap, cache=cache,
                    corrupt_pages=cache.find_corrupted(),
                )
                host = target
                resume_at = mreport.t_end
        resume_at = max(resume_at, float(recovered.snapshot["t"]))
        # The takeover engine carries the dead replica's dp_rank (the
        # snapshot's world check) and its tracer — the resume gap and
        # migration events render on replica i's trace row.
        takeover = self._make_engine(i, tracer, ckpt, store)
        takeover.track_pressure = True
        metrics = takeover.resume(recovered, tracer=tracer, at_time=resume_at)
        controller.note_recovery(
            i, host, t_fail, t_dead, resume_at,
            inflight_units(recovered.snapshot),
        )
        return metrics

    def run_reference(self, requests):
        """The single-GPU token oracle: tp=1, dp=1, same rids, no topology.

        Token ids depend only on ``(rid, gen, pos)``, so this run's tokens
        are what every cluster shape must reproduce exactly.
        """
        from repro.faults.recover import ResilienceConfig
        from repro.serving.engine import ServingEngine

        cfg = dataclasses.replace(self._engine_config(), tensor_parallel=1)
        engine = ServingEngine.from_config(
            cfg, model=self.model, gpu=self.gpu,
            backend_factory=self.backend_factory,
            resilience=ResilienceConfig(),
        )
        return engine.run(assign_rids(requests))

    def trace_processes(self):
        """Per-replica ``(label, events, fault_events)`` triples for
        :func:`repro.obs.write_cluster_trace`."""
        if self.tracers is None:
            raise ValueError("construct the ClusterEngine with trace=True")

        def label(i: int) -> str:
            role = self._engine_roles.get(i)
            if role is not None:
                return f"replica {i} ({role}, tp={self.config.tp})"
            return f"replica {i} (tp={self.config.tp})"

        return [
            (label(i), tr.events, tr.fault_events)
            for i, tr in enumerate(self.tracers)
        ]
