"""Interconnect topologies: links, collective cost models, degradation.

One simulated GPU became many: this module models *how they are wired*.
A :class:`Link` is a (bandwidth, latency) pair; a :class:`Topology` is a
world of devices joined by one link class in a fixed shape — an NVLink
ring (direct neighbour links, transfers in one ring step proceed in
parallel) or a PCIe host bridge (every transfer crosses the shared root
complex twice and serializes against every other transfer).  Collective
costs use the standard ring algorithms:

* all-reduce:      ``2(g−1)`` rounds, each moving ``bytes/g`` per rank
* all-gather:      ``(g−1)`` rounds of ``bytes/g``
* reduce-scatter:  ``(g−1)`` rounds of ``bytes/g``
* p2p:             one transfer of ``bytes``

so an NVLink ring all-reduce costs ``2(g−1)/g · bytes/bw + 2(g−1)·lat``,
the formula NCCL's ring protocol converges to for large messages.

This module is also the single source of truth for link constants:
:data:`DEFAULT_LINK_BANDWIDTH` (ring attention,
:mod:`repro.distributed.ring`) and :data:`NVLINK_ALLREDUCE_BW` /
:data:`ALLREDUCE_LATENCY` (the engine's flat tensor-parallel all-reduce
model, :mod:`repro.serving.model`) are defined here and imported there —
the values are unchanged, so every pre-cluster cost is bit-identical.

Fault injection: :meth:`Topology.degrade` installs a time-windowed
bandwidth derating (a flapping NVLink, a PCIe retrain); every collective
priced inside the window sees the reduced bandwidth.  All traffic is
accounted per collective kind so a run can report per-link utilization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = [
    "ALLREDUCE_LATENCY",
    "DEFAULT_LINK_BANDWIDTH",
    "Link",
    "LinkDegradation",
    "NVLINK_ALLREDUCE_BW",
    "NVLINK_BUS",
    "NVLINK_P2P",
    "PCIE_HOST",
    "TOPOLOGY_PRESETS",
    "Topology",
]


@dataclass(frozen=True)
class Link:
    """One interconnect link class: per-direction bandwidth and hop latency."""

    name: str
    bandwidth: float  # bytes/s, per direction
    latency: float  # seconds per hop

    def transfer_time(self, nbytes: float, efficiency: float = 1.0) -> float:
        """Time for one point-to-point transfer over this link."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.latency + nbytes / (self.bandwidth * efficiency)


#: NVLink-class neighbour link (ring attention shard transfers, ring
#: collectives).  The value is the former ``distributed.ring``
#: ``DEFAULT_LINK_BANDWIDTH`` literal, now defined once here.
NVLINK_P2P = Link("nvlink-p2p", bandwidth=200e9, latency=2e-6)

#: NVLink all-reduce effective *bus* bandwidth and base latency — the
#: flat per-all-reduce model :meth:`repro.serving.model.ModelConfig.
#: allreduce_time` uses (the former module literals, unchanged).
NVLINK_BUS = Link("nvlink-bus", bandwidth=300e9, latency=8e-6)

#: PCIe Gen4 x16 host bridge: every device-to-device transfer crosses the
#: shared root complex, so transfers serialize against each other.
PCIE_HOST = Link("pcie-host", bandwidth=32e9, latency=5e-6)

# Back-compat aliases re-exported by their original homes.
DEFAULT_LINK_BANDWIDTH = NVLINK_P2P.bandwidth
NVLINK_ALLREDUCE_BW = NVLINK_BUS.bandwidth
ALLREDUCE_LATENCY = NVLINK_BUS.latency


@dataclass(frozen=True)
class LinkDegradation:
    """A time-windowed bandwidth derating (fault injection).

    While ``t_start <= t < t_end`` the topology's link bandwidth is
    multiplied by ``factor`` (overlapping windows compound).
    """

    t_start: float
    t_end: float
    factor: float

    def __post_init__(self) -> None:
        if not 0.0 < self.factor <= 1.0:
            raise ValueError("degradation factor must be in (0, 1]")
        if self.t_end <= self.t_start:
            raise ValueError("degradation window must have t_end > t_start")

    def active(self, t: float) -> bool:
        return self.t_start <= t < self.t_end


class Topology:
    """A world of devices joined by one link class in a fixed shape.

    ``shared_medium=False`` (ring): the ``world`` neighbour links carry
    one transfer each per collective round, in parallel.
    ``shared_medium=True`` (host bridge): all devices hang off one root
    complex; each round's per-rank transfers serialize on it and every
    hop pays the bridge latency twice (up and down).
    """

    def __init__(
        self,
        name: str,
        world: int,
        link: Link,
        shared_medium: bool = False,
    ):
        if world < 1:
            raise ValueError("world must be >= 1")
        self.name = name
        self.world = world
        self.link = link
        self.shared_medium = shared_medium
        self.degradations: List[LinkDegradation] = []
        #: Wire bytes actually moved, per collective kind.
        self.traffic_bytes: Dict[str, float] = {}
        #: Simulated seconds the interconnect spent busy, per kind.
        self.busy_seconds: Dict[str, float] = {}

    @classmethod
    def preset(cls, name: str, world: int) -> "Topology":
        """Build a named preset topology (see :data:`TOPOLOGY_PRESETS`)."""
        try:
            return TOPOLOGY_PRESETS[name](world)
        except KeyError:
            raise ValueError(
                f"unknown topology {name!r}; available: "
                f"{', '.join(sorted(TOPOLOGY_PRESETS))}"
            ) from None

    # -- degradation (fault injection) ----------------------------------------

    def degrade(self, t_start: float, t_end: float, factor: float) -> LinkDegradation:
        """Install a bandwidth derating window; returns the record."""
        deg = LinkDegradation(t_start, t_end, factor)
        self.degradations.append(deg)
        return deg

    def bandwidth_factor(self, t: float) -> float:
        """Compounded derating factor at simulated time ``t``."""
        factor = 1.0
        for deg in self.degradations:
            if deg.active(t):
                factor *= deg.factor
        return factor

    # -- collective cost models ------------------------------------------------

    def _hop_latency(self) -> float:
        # A host-bridge hop traverses the root complex up and down.
        return self.link.latency * (2.0 if self.shared_medium else 1.0)

    def _round_time(self, chunk_bytes: float, group: int, efficiency: float, t: float) -> float:
        """One collective round: each of ``group`` ranks moves ``chunk_bytes``
        to its neighbour — concurrently on a ring, serially on a bridge."""
        bw = self.link.bandwidth * efficiency * self.bandwidth_factor(t)
        transfers = group if self.shared_medium else 1
        return self._hop_latency() + transfers * chunk_bytes / bw

    def _group(self, group_size: Optional[int]) -> int:
        g = self.world if group_size is None else group_size
        if g < 1 or g > self.world:
            raise ValueError(f"group_size {g} outside [1, world={self.world}]")
        return g

    def p2p_time(self, nbytes: float, efficiency: float = 1.0, t: float = 0.0) -> float:
        """One point-to-point transfer (a ring-attention shard hop)."""
        return self._round_time(float(nbytes), 1, efficiency, t)

    def all_reduce_time(
        self, nbytes: float, group_size: Optional[int] = None,
        efficiency: float = 1.0, t: float = 0.0,
    ) -> float:
        """Ring all-reduce of an ``nbytes`` payload across the group."""
        g = self._group(group_size)
        if g <= 1:
            return 0.0
        return 2 * (g - 1) * self._round_time(nbytes / g, g, efficiency, t)

    def all_gather_time(
        self, nbytes: float, group_size: Optional[int] = None,
        efficiency: float = 1.0, t: float = 0.0,
    ) -> float:
        """Ring all-gather; ``nbytes`` is the total gathered payload."""
        g = self._group(group_size)
        if g <= 1:
            return 0.0
        return (g - 1) * self._round_time(nbytes / g, g, efficiency, t)

    def reduce_scatter_time(
        self, nbytes: float, group_size: Optional[int] = None,
        efficiency: float = 1.0, t: float = 0.0,
    ) -> float:
        """Ring reduce-scatter; ``nbytes`` is the full (pre-scatter) payload."""
        g = self._group(group_size)
        if g <= 1:
            return 0.0
        return (g - 1) * self._round_time(nbytes / g, g, efficiency, t)

    @staticmethod
    def all_reduce_wire_bytes(nbytes: float, group_size: int) -> float:
        """Bytes a ring all-reduce actually moves: ``2(g−1)`` rounds of
        ``g`` chunks of ``nbytes/g`` (the accounting the utilization
        counters charge)."""
        if group_size <= 1:
            return 0.0
        return 2.0 * (group_size - 1) * nbytes

    # -- accounting ------------------------------------------------------------

    def charge(self, kind: str, wire_bytes: float, seconds: float) -> None:
        """Account one collective against the interconnect."""
        self.traffic_bytes[kind] = self.traffic_bytes.get(kind, 0.0) + wire_bytes
        self.busy_seconds[kind] = self.busy_seconds.get(kind, 0.0) + seconds

    @property
    def total_traffic_bytes(self) -> float:
        return sum(self.traffic_bytes.values())

    @property
    def total_busy_seconds(self) -> float:
        return sum(self.busy_seconds.values())

    def utilization(self, makespan: float) -> float:
        """Fraction of ``makespan`` the interconnect was busy (can exceed
        1.0 when collectives of different replicas overlap in simulated
        time — the links are per-replica-group but accounted together)."""
        if makespan <= 0:
            return 0.0
        return self.total_busy_seconds / makespan

    def link_stats(self, makespan: Optional[float] = None) -> Dict[str, float]:
        """Per-link accounting for metrics summaries."""
        stats: Dict[str, float] = {
            "link_bytes": self.total_traffic_bytes,
            "link_busy_s": self.total_busy_seconds,
            "link_degradations": float(len(self.degradations)),
        }
        for kind in sorted(self.traffic_bytes):
            stats[f"link_{kind}_bytes"] = self.traffic_bytes[kind]
            stats[f"link_{kind}_busy_s"] = self.busy_seconds.get(kind, 0.0)
        if makespan is not None:
            stats["link_utilization"] = self.utilization(makespan)
        return stats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Topology({self.name!r}, world={self.world}, link={self.link.name}, "
            f"shared_medium={self.shared_medium})"
        )


def _nvlink(world: int) -> Topology:
    """Fully-connected NVLink ring: neighbour transfers run in parallel."""
    return Topology("nvlink", world, NVLINK_P2P, shared_medium=False)


def _pcie(world: int) -> Topology:
    """PCIe host bridge: all transfers serialize on the root complex."""
    return Topology("pcie", world, PCIE_HOST, shared_medium=True)


#: Named topology presets (``serve --topology`` accepts these keys).
TOPOLOGY_PRESETS = {
    "nvlink": _nvlink,
    "pcie": _pcie,
}
