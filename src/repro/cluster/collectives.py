"""Simulated collectives: exact numerics plus topology-priced cost.

Each collective takes the per-rank shards, computes the mathematically
exact result (a deterministic rank-order fold, so every rank observes the
identical array — the simulated analog of NCCL's deterministic reduction
order), and returns ``(result, cost_seconds)`` where the cost comes from
the :class:`~repro.cluster.topology.Topology` ring model.  With
``topology=None`` the numerics run free (cost 0.0) — useful for pure
algebra tests.

``all_reduce_states`` composes *attention states* with the paper's ``⊕``
operator (:func:`repro.core.state.merge_states`): the cross-device
reduction of ring/sequence-parallel attention is exactly the associative
merge the on-device split-KV scheduler already uses, so distributing the
reduction cannot change the result beyond fold-order roundoff — and the
fold order here is fixed (rank 0..g−1), making it deterministic too.

Every priced collective is charged to the topology's per-kind traffic
counters, which is where cluster-level link-utilization metrics come from.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.state import AttentionState, merge_states
from repro.cluster.topology import Topology

__all__ = [
    "all_gather",
    "all_reduce",
    "all_reduce_states",
    "p2p_send",
    "reduce_scatter",
]


def _as_arrays(shards: Sequence[np.ndarray]) -> List[np.ndarray]:
    if not shards:
        raise ValueError("collective over zero ranks")
    arrays = [np.asarray(s, dtype=np.float64) for s in shards]
    shape = arrays[0].shape
    for i, a in enumerate(arrays[1:], start=1):
        if a.shape != shape:
            raise ValueError(
                f"rank {i} shard shape {a.shape} != rank 0 shape {shape}"
            )
    return arrays


def _reduce(arrays: List[np.ndarray], op: str) -> np.ndarray:
    """Deterministic rank-order fold (rank 0 first, always)."""
    acc = arrays[0].copy()
    for a in arrays[1:]:
        if op == "sum":
            acc += a
        elif op == "max":
            np.maximum(acc, a, out=acc)
        else:
            raise ValueError(f"unknown reduce op {op!r} (use 'sum' or 'max')")
    return acc


def all_reduce(
    shards: Sequence[np.ndarray],
    topology: Optional[Topology] = None,
    op: str = "sum",
    efficiency: float = 1.0,
    t: float = 0.0,
) -> Tuple[np.ndarray, float]:
    """Reduce the per-rank arrays; every rank ends with the same result.

    Returns ``(reduced, cost_seconds)``.
    """
    arrays = _as_arrays(shards)
    result = _reduce(arrays, op)
    cost = 0.0
    if topology is not None and len(arrays) > 1:
        nbytes = float(result.nbytes)
        cost = topology.all_reduce_time(nbytes, len(arrays), efficiency, t)
        topology.charge(
            "all_reduce", topology.all_reduce_wire_bytes(nbytes, len(arrays)), cost
        )
    return result, cost


def all_gather(
    shards: Sequence[np.ndarray],
    topology: Optional[Topology] = None,
    axis: int = 0,
    efficiency: float = 1.0,
    t: float = 0.0,
) -> Tuple[np.ndarray, float]:
    """Concatenate the per-rank shards along ``axis`` (rank order).

    Returns ``(gathered, cost_seconds)``; the gathered array is what every
    rank holds afterwards.
    """
    if not shards:
        raise ValueError("collective over zero ranks")
    arrays = [np.asarray(s, dtype=np.float64) for s in shards]
    gathered = np.concatenate(arrays, axis=axis)
    cost = 0.0
    if topology is not None and len(arrays) > 1:
        g = len(arrays)
        nbytes = float(gathered.nbytes)
        cost = topology.all_gather_time(nbytes, g, efficiency, t)
        topology.charge("all_gather", (g - 1) * nbytes, cost)
    return gathered, cost


def reduce_scatter(
    shards: Sequence[np.ndarray],
    topology: Optional[Topology] = None,
    axis: int = 0,
    op: str = "sum",
    efficiency: float = 1.0,
    t: float = 0.0,
) -> Tuple[List[np.ndarray], float]:
    """Reduce the per-rank arrays, scattering slice ``r`` to rank ``r``.

    Slices follow :func:`numpy.array_split` (near-equal, rank order), so
    ``all_gather(reduce_scatter(x))`` reconstructs ``all_reduce(x)``.
    Returns ``(per_rank_slices, cost_seconds)``.
    """
    arrays = _as_arrays(shards)
    total = _reduce(arrays, op)
    pieces = np.array_split(total, len(arrays), axis=axis)
    cost = 0.0
    if topology is not None and len(arrays) > 1:
        g = len(arrays)
        nbytes = float(total.nbytes)
        cost = topology.reduce_scatter_time(nbytes, g, efficiency, t)
        topology.charge("reduce_scatter", (g - 1) * nbytes, cost)
    return pieces, cost


def p2p_send(
    array: np.ndarray,
    topology: Optional[Topology] = None,
    efficiency: float = 1.0,
    t: float = 0.0,
    kind: str = "p2p",
    wire_bytes: Optional[float] = None,
) -> Tuple[np.ndarray, float]:
    """Send an array to a neighbour; the receiver gets a bitwise copy.

    ``kind`` names the traffic bucket charged on the topology (KV
    migration uses ``"migration"`` so it shows up as its own
    ``link_migration_*`` stats).  ``wire_bytes`` overrides the priced
    payload size when the array is a stand-in for larger modeled traffic
    — migration ships page-table metadata bitwise but prices the KV
    pages those entries represent.
    """
    a = np.asarray(array)
    received = a.copy()
    cost = 0.0
    if topology is not None:
        nbytes = float(a.nbytes) if wire_bytes is None else float(wire_bytes)
        cost = topology.p2p_time(nbytes, efficiency, t)
        topology.charge(kind, nbytes, cost)
    return received, cost


def all_reduce_states(
    states: Sequence[AttentionState],
    topology: Optional[Topology] = None,
    efficiency: float = 1.0,
    t: float = 0.0,
) -> Tuple[AttentionState, float]:
    """``⊕``-reduce per-rank attention states (rank-order fold).

    The payload priced on the wire is each state's ``(O, LSE)`` pair —
    what ring attention actually exchanges when merging remote partials.
    """
    if not states:
        raise ValueError("collective over zero ranks")
    o, lse = states[0].o, states[0].lse
    for s in states[1:]:
        o, lse = merge_states(o, lse, s.o, s.lse)
    result = AttentionState(o, lse)
    cost = 0.0
    if topology is not None and len(states) > 1:
        nbytes = float(result.o.nbytes + result.lse.nbytes)
        cost = topology.all_reduce_time(nbytes, len(states), efficiency, t)
        topology.charge(
            "all_reduce_states",
            topology.all_reduce_wire_bytes(nbytes, len(states)),
            cost,
        )
    return result, cost
