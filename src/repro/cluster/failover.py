"""Cluster failover: health detection, draining, and live KV migration.

The cluster-level robustness layer on top of the PR-4 durability stack.
Three pieces compose into replica failover:

* **Health detection** — :class:`FailureDetector` runs a heartbeat
  timeout per replica on the simulated clock.  Replica engines call a
  per-step heartbeat hook; a replica that misses
  ``suspect_after`` consecutive heartbeat intervals is *suspected*
  (the router stops sending it new work) and after ``dead_after``
  intervals it is declared *dead*.  Every replica walks the state
  machine::

      healthy ──► suspected ──► dead ──► recovering ──► rejoined
         │             │          ▲
         └─► draining ─┴──────────┘        (planned scale-in path)

  with illegal transitions rejected (:class:`IllegalTransitionError`)
  and every transition timestamped for the trace.

* **Live KV migration** — :class:`KVMigrator` ships a dead (or drained)
  replica's latest checkpoint snapshot to a healthy host.  The wire
  format is the PR-4 snapshot schema itself: one *control chunk* (the
  snapshot with the per-page arrays stripped) plus page chunks of up to
  ``chunk_pages`` live pages, each exported through
  :meth:`~repro.kvcache.paged.PagedKVCache.export_pages` and priced as
  that many modeled KV-page bytes of :func:`p2p_send` traffic on the
  cluster :class:`~repro.cluster.topology.Topology` (traffic kind
  ``"migration"`` — it shows up in ``link_migration_*`` stats).  Every
  chunk carries a sha256 over its canonical JSON; an injected link
  fault (fault plan site ``"link"``) aborts the transfer mid-flight and
  is retried with exponential backoff up to ``max_retries`` times
  (exhaustion raises :class:`MigrationError`), while a checksum
  mismatch on a received chunk is *refused outright*
  (:class:`MigrationChecksumError`, a
  :class:`~repro.serving.checkpoint.SnapshotVerificationError`) — a
  corrupt page table must never be imported.

* **Takeover** — the cluster engine rebuilds the dead replica's state
  from the migrated snapshot on the target host
  (:meth:`PagedKVCache.from_state` + the original journal's
  :class:`~repro.serving.checkpoint.ReplayGuard`) and resumes it at
  ``max(snapshot_t, t_dead + migration_time)``.  Token ids are a pure
  function of ``(rid, gen, pos)``, so the delayed, relocated resume is
  token-exact by construction — the acceptance check the CI smoke job
  greps for.

:class:`HealthSchedule` is the router-facing view: known unhealthy
windows per replica (from drains, scripted failures, or tests) that the
cluster's routing pass consults to skip unhealthy replicas, pressure
the :class:`~repro.cluster.router.LoadTracker`, and — when *every*
replica is down — hold arrivals at the front door until the first
replica rejoins, never silently dropping them.

This machinery is the substrate for disaggregated prefill/decode
(ROADMAP): shipping KV pages between replicas as priced, checksummed
``p2p_send`` traffic is exactly the prefill→decode handoff.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.collectives import p2p_send
from repro.cluster.topology import Topology
from repro.serving.checkpoint import SnapshotVerificationError

__all__ = [
    "DEFAULT_UNHEALTHY_PRESSURE",
    "FailoverConfig",
    "FailoverController",
    "FailoverReport",
    "FailureDetector",
    "HEALTH_STATES",
    "HealthSchedule",
    "HealthTransition",
    "IllegalTransitionError",
    "KVMigrator",
    "MigrationChecksumError",
    "MigrationError",
    "MigrationReport",
    "ReplicaFailure",
    "ReplicaHealth",
]

#: Health states in lifecycle order.
HEALTH_STATES: Tuple[str, ...] = (
    "healthy", "suspected", "dead", "draining", "recovering", "rejoined",
)

#: Legal state-machine edges; anything else raises
#: :class:`IllegalTransitionError` (e.g. dead → healthy without passing
#: through recovery).
_LEGAL_TRANSITIONS: Dict[str, frozenset] = {
    "healthy": frozenset({"suspected", "draining"}),
    "suspected": frozenset({"healthy", "dead", "draining"}),
    "draining": frozenset({"dead"}),
    "dead": frozenset({"recovering"}),
    "recovering": frozenset({"rejoined"}),
    "rejoined": frozenset({"suspected", "draining"}),
}

#: Synthetic backlog (seconds of work) the routing pass charges an
#: unhealthy replica in the :class:`~repro.cluster.router.LoadTracker`,
#: so load-sensitive policies steer around it even before the hard
#: health mask applies.
DEFAULT_UNHEALTHY_PRESSURE = 60.0


class IllegalTransitionError(ValueError):
    """A health-state transition outside the legal state machine."""


class MigrationError(RuntimeError):
    """KV migration failed permanently (link-fault retries exhausted)."""


class MigrationChecksumError(SnapshotVerificationError, MigrationError):
    """A migrated chunk's payload no longer matches its checksum.

    Refused outright rather than retried: unlike a link fault (the
    sender still holds the good bytes), a checksum mismatch means the
    received page table cannot be trusted, and importing it would
    corrupt the takeover replica's KV state — the same refusal contract
    as :class:`~repro.serving.checkpoint.SnapshotVerificationError`.
    """


@dataclass(frozen=True)
class ReplicaFailure:
    """One scripted replica failure for the cluster engine.

    ``mode="crash"`` kills the replica's engine at ``step`` (heartbeats
    stop; the detector times it out).  ``mode="drain"`` stops the
    replica at ``step`` for planned scale-in: no detection delay, the
    replica drains and hands its KV off immediately.
    """

    step: int
    mode: str = "crash"
    phase: str = "boundary"

    def __post_init__(self):
        if self.step < 0:
            raise ValueError(f"failure step must be >= 0, got {self.step}")
        if self.mode not in ("crash", "drain"):
            raise ValueError(
                f"failure mode must be 'crash' or 'drain', got {self.mode!r}"
            )
        if self.phase not in ("boundary", "mid-step"):
            raise ValueError(
                f"failure phase must be 'boundary' or 'mid-step', got {self.phase!r}"
            )


@dataclass
class FailoverConfig:
    """Detection and migration knobs for cluster failover."""

    #: Nominal gap between replica heartbeats (each executed engine step
    #: emits one; steps are a few ms, so 5 ms spans ~1-2 steps).
    heartbeat_interval: float = 0.005
    #: Missed intervals before a replica is *suspected* (routing stops).
    suspect_after: int = 2
    #: Missed intervals before a replica is declared *dead* (migration
    #: starts).  Must exceed ``suspect_after``.
    dead_after: int = 4
    #: Dead → rejoined delay when no migration happens (in-place restart).
    rejoin_delay: float = 0.05
    #: Live KV pages per migration chunk.
    chunk_pages: int = 64
    #: Bounded retry budget per chunk under injected link faults.
    max_retries: int = 4
    #: Exponential backoff after a failed chunk transfer:
    #: ``backoff_base * backoff_factor ** attempt`` seconds.
    backoff_base: float = 0.002
    backoff_factor: float = 2.0

    def __post_init__(self):
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if not 0 < self.suspect_after < self.dead_after:
            raise ValueError(
                f"need 0 < suspect_after < dead_after, got "
                f"{self.suspect_after}/{self.dead_after}"
            )
        if self.chunk_pages < 1:
            raise ValueError("chunk_pages must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")


@dataclass(frozen=True)
class HealthTransition:
    """One timestamped health-state edge for a replica."""

    t: float
    replica: int
    frm: str
    to: str
    detail: str = ""


class ReplicaHealth:
    """One replica's health state machine with a transition log."""

    def __init__(self, replica: int):
        self.replica = replica
        self.state = "healthy"
        self.last_heartbeat = 0.0
        self.transitions: List[HealthTransition] = []

    def to(self, state: str, t: float, detail: str = "") -> HealthTransition:
        if state not in HEALTH_STATES:
            raise IllegalTransitionError(
                f"unknown health state {state!r}; expected one of {HEALTH_STATES}"
            )
        if state not in _LEGAL_TRANSITIONS[self.state]:
            raise IllegalTransitionError(
                f"replica {self.replica}: illegal transition "
                f"{self.state} -> {state}"
            )
        tr = HealthTransition(
            t=float(t), replica=self.replica, frm=self.state, to=state,
            detail=detail,
        )
        self.state = state
        self.transitions.append(tr)
        return tr

    def heartbeat(self, t: float) -> Optional[HealthTransition]:
        """Record a heartbeat; a suspected replica flaps back to healthy."""
        self.last_heartbeat = max(self.last_heartbeat, float(t))
        if self.state == "suspected":
            return self.to("healthy", t, "heartbeat resumed")
        return None


class FailureDetector:
    """Heartbeat-timeout failure detection on the simulated clock.

    Deterministic: a replica whose last heartbeat was at ``t_hb`` is
    suspected at exactly ``t_hb + suspect_after * heartbeat_interval``
    and declared dead at ``t_hb + dead_after * heartbeat_interval`` —
    :meth:`advance` back-dates the transitions to those deadlines no
    matter when it is called, so detection timestamps do not depend on
    polling cadence.
    """

    def __init__(self, num_replicas: int, config: Optional[FailoverConfig] = None):
        if num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        self.config = config or FailoverConfig()
        self.replicas = [ReplicaHealth(i) for i in range(num_replicas)]

    def heartbeat(self, replica: int, t: float) -> None:
        self.replicas[replica].heartbeat(t)

    def advance(
        self, t: float, replicas: Optional[Sequence[int]] = None
    ) -> List[HealthTransition]:
        """Advance the detector clock to ``t``; returns new transitions.

        ``replicas`` restricts the sweep to the monitored subset (the
        cluster engine monitors only replicas with a failure in flight;
        an idle replica with no heartbeats yet must not time out).
        """
        cfg = self.config
        fired: List[HealthTransition] = []
        idx = range(len(self.replicas)) if replicas is None else replicas
        for i in idx:
            h = self.replicas[i]
            t_suspect = h.last_heartbeat + cfg.suspect_after * cfg.heartbeat_interval
            t_dead = h.last_heartbeat + cfg.dead_after * cfg.heartbeat_interval
            if h.state in ("healthy", "rejoined") and t > t_suspect:
                fired.append(h.to(
                    "suspected", t_suspect,
                    f"{cfg.suspect_after} heartbeat intervals missed",
                ))
            if h.state == "suspected" and t > t_dead:
                fired.append(h.to(
                    "dead", t_dead,
                    f"{cfg.dead_after} heartbeat intervals missed",
                ))
        return fired

    def state(self, replica: int) -> str:
        return self.replicas[replica].state

    def healthy_mask(self) -> List[bool]:
        return [h.state in ("healthy", "rejoined") for h in self.replicas]

    def transitions(self) -> List[HealthTransition]:
        """All transitions across replicas, time-ordered (ties → replica id)."""
        out = [tr for h in self.replicas for tr in h.transitions]
        out.sort(key=lambda tr: (tr.t, tr.replica))
        return out


class HealthSchedule:
    """Known per-replica unhealthy windows for the routing pass.

    The front-door view of health: the cluster's routing pass (which
    walks the workload's arrival timeline before replicas execute)
    consults :meth:`mask` to avoid placing work on replicas that are
    known to be down in a window — scripted failures, planned drains.
    ``t_end=inf`` marks a replica that never comes back.
    """

    def __init__(self, num_replicas: int):
        if num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        self.num_replicas = num_replicas
        self._windows: List[List[Tuple[float, float]]] = [
            [] for _ in range(num_replicas)
        ]

    def add_window(
        self, replica: int, t_start: float, t_end: float = math.inf
    ) -> "HealthSchedule":
        if not 0 <= replica < self.num_replicas:
            raise ValueError(f"replica {replica} outside [0, {self.num_replicas})")
        if t_end <= t_start:
            raise ValueError(f"empty unhealthy window [{t_start}, {t_end})")
        self._windows[replica].append((float(t_start), float(t_end)))
        return self

    def healthy_at(self, replica: int, t: float) -> bool:
        return not any(t0 <= t < t1 for t0, t1 in self._windows[replica])

    def mask(self, t: float) -> List[bool]:
        return [self.healthy_at(r, t) for r in range(self.num_replicas)]

    def _recovery_time(self, replica: int, t: float) -> float:
        """Earliest time >= ``t`` at which ``replica`` is healthy (may be
        inf).  Windows can overlap, so walk past each covering window."""
        t_ok = t
        for _ in range(len(self._windows[replica]) + 1):
            covering = [
                t1 for t0, t1 in self._windows[replica] if t0 <= t_ok < t1
            ]
            if not covering:
                return t_ok
            t_ok = max(covering)
        return t_ok

    def next_recovery(self, t: float) -> Tuple[float, Optional[int]]:
        """``(t_rejoin, replica)`` for the first replica healthy at or
        after ``t`` (ties → lowest id); ``(inf, None)`` if none ever is."""
        best_t, best_r = math.inf, None
        for r in range(self.num_replicas):
            t_r = self._recovery_time(r, t)
            if t_r < best_t:
                best_t, best_r = t_r, r
        return best_t, best_r


# -- live KV migration ---------------------------------------------------------


def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True)


def _chunk_sha(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class MigrationReport:
    """Accounting for one snapshot migration."""

    source: int
    target: int
    #: Live KV pages shipped (the unit the smoke test asserts nonzero).
    pages: int
    #: Bytes charged to the topology (modeled KV payload + control JSON).
    wire_bytes: float
    chunks: int
    retries: int
    #: Total simulated transfer time including backoffs and wasted
    #: (faulted) transfer attempts.
    seconds: float
    t_start: float
    t_end: float


class KVMigrator:
    """Ship a replica snapshot over the topology, chunked and checksummed.

    The wire format splits the PR-4 snapshot into a *control chunk* (the
    snapshot JSON with the cache's per-page ``refcount``/``version``/
    ``stamp`` arrays stripped) and *page chunks* of up to
    ``config.chunk_pages`` live pages each, produced by
    :meth:`PagedKVCache.export_pages` on a cache rebuilt from the
    snapshot.  Each chunk is priced on the topology as ``"migration"``
    :func:`p2p_send` traffic — page chunks at the modeled KV bytes of
    their pages (fp16 K+V), the control chunk at its JSON size — and
    carries a sha256 the receiver verifies before reassembly.
    """

    def __init__(
        self,
        topology: Optional[Topology],
        config: Optional[FailoverConfig] = None,
        fault_plan=None,
    ):
        self.topology = topology
        self.config = config or FailoverConfig()
        #: Optional :class:`repro.faults.FaultPlan`; its ``link`` site is
        #: consulted once per transfer attempt.
        self.fault_plan = fault_plan

    def _link_faulted(self) -> bool:
        plan = self.fault_plan
        return plan is not None and plan.armed("link") and plan.fire("link")

    def _send(
        self, payload: str, checksum: str, wire_bytes: float, t: float,
        what: str, tampered: bool, kind: str = "migration",
    ) -> Tuple[str, float, int]:
        """One chunk through the retry loop; returns
        ``(received_payload, elapsed_seconds, retries)``.

        ``kind`` names the traffic class charged on the topology
        (``"migration"`` for failover, ``"handoff"`` for disaggregated
        prefill→decode shipping), so each flow gets its own
        ``link_<kind>_*`` accounting.
        """
        cfg = self.config
        arr = np.frombuffer(payload.encode("utf-8"), dtype=np.uint8)
        elapsed = 0.0
        retries = 0
        for attempt in range(cfg.max_retries + 1):
            faulted = self._link_faulted()
            received, cost = p2p_send(
                arr, self.topology, t=t + elapsed,
                kind=kind, wire_bytes=wire_bytes,
            )
            elapsed += cost
            if faulted:
                # Transfer aborted mid-flight: the wasted attempt is still
                # real link traffic; back off exponentially and retry.
                retries += 1
                if attempt >= cfg.max_retries:
                    raise MigrationError(
                        f"{kind} {what}: link faulted on all "
                        f"{cfg.max_retries + 1} transfer attempts"
                    )
                elapsed += cfg.backoff_base * cfg.backoff_factor ** attempt
                continue
            data = received.tobytes().decode("utf-8")
            if tampered:
                data = "\x00" + data[1:]
            if _chunk_sha(data) != checksum:
                raise MigrationChecksumError(
                    f"{kind} {what}: received payload fails its sha256; "
                    f"refusing to import an unverifiable page table"
                )
            return data, elapsed, retries
        raise AssertionError("unreachable")  # pragma: no cover

    def migrate(
        self,
        snapshot: dict,
        t: float,
        source: int,
        target: int,
        corrupt_chunks: Sequence[int] = (),
    ) -> Tuple[dict, MigrationReport]:
        """Ship ``snapshot`` from ``source`` to ``target`` at time ``t``.

        Returns ``(received_snapshot, report)``.  ``corrupt_chunks`` is a
        test hook tampering the named page-chunk indices in flight, which
        must surface as :class:`MigrationChecksumError`.
        """
        from repro.kvcache.paged import PagedKVCache

        cfg = self.config
        cache_state = snapshot["cache"]
        cache = PagedKVCache.from_state(cache_state)
        live = cache.used_pages()
        page_bytes = cache.page_kv_bytes
        corrupt = frozenset(int(i) for i in corrupt_chunks)

        # Control chunk: the snapshot minus the per-page arrays (those
        # travel in the page chunks) — still carries geometry, the free
        # list, sequence page tables, queues, metrics, RNG streams.
        control_cache = dict(cache_state)
        control_cache["refcount"] = []
        control_cache["page_version"] = []
        control_cache["page_stamp"] = []
        control_snap = dict(snapshot)
        control_snap["cache"] = control_cache
        control_payload = _canonical(control_snap)

        now = float(t)
        total_wire = 0.0
        total_retries = 0
        data, dt, retries = self._send(
            control_payload, _chunk_sha(control_payload),
            float(len(control_payload)), now, "control chunk", tampered=False,
        )
        received_snap = json.loads(data)
        now += dt
        total_wire += float(len(control_payload))
        total_retries += retries

        # Page chunks: live page rows in fixed id order, priced at the
        # modeled KV bytes they stand for.
        num_chunks = 1
        refcount = [0] * cache.num_pages
        version = [0] * cache.num_pages
        stamp = [0] * cache.num_pages
        for ci, lo in enumerate(range(0, len(live), cfg.chunk_pages)):
            rows = cache.export_pages(live[lo:lo + cfg.chunk_pages])
            payload = _canonical(rows)
            data, dt, retries = self._send(
                payload, _chunk_sha(payload),
                float(len(rows["pages"])) * page_bytes, now,
                f"page chunk {ci} ({len(rows['pages'])} pages)",
                tampered=ci in corrupt,
            )
            now += dt
            total_wire += float(len(rows["pages"])) * page_bytes
            total_retries += retries
            num_chunks += 1
            got = json.loads(data)
            for p, rc, ver, st in zip(
                got["pages"], got["refcount"], got["version"], got["stamp"]
            ):
                refcount[p] = rc
                version[p] = ver
                stamp[p] = st

        received_snap["cache"]["refcount"] = refcount
        received_snap["cache"]["page_version"] = version
        received_snap["cache"]["page_stamp"] = stamp
        report = MigrationReport(
            source=source, target=target, pages=len(live),
            wire_bytes=total_wire, chunks=num_chunks,
            retries=total_retries, seconds=now - float(t),
            t_start=float(t), t_end=now,
        )
        return received_snap, report


# -- failover orchestration ----------------------------------------------------


@dataclass
class FailoverReport:
    """Cluster-level failover accounting (``ClusterMetrics.failover``)."""

    transitions: List[HealthTransition] = field(default_factory=list)
    migrations: List[MigrationReport] = field(default_factory=list)
    crashes: int = 0
    drains: int = 0
    #: Failovers that fell back to in-place recovery (no healthy target,
    #: or migration retries exhausted).
    fallbacks: int = 0
    #: Sum over failures of (declared dead − failed) — detection latency.
    detect_seconds: float = 0.0
    #: Sum over failures of (resumed − failed) — end-to-end recovery time.
    recovery_seconds: float = 0.0
    #: In-flight units of work (streams + partial prefills + preempted)
    #: carried through migration.
    inflight_migrated: int = 0
    #: Arrivals held at the front door because every replica was
    #: unhealthy (queued, never dropped).
    held_requests: int = 0
    #: Per-replica peak admission saturation, filled by the cluster run.
    admission_pressure: List[float] = field(default_factory=list)

    def summary(self) -> Dict[str, float]:
        return {
            "failover_crashes": float(self.crashes),
            "failover_drains": float(self.drains),
            "failover_fallbacks": float(self.fallbacks),
            "failover_transitions": float(len(self.transitions)),
            "failover_detect_s": float(self.detect_seconds),
            "failover_recovery_s": float(self.recovery_seconds),
            "failover_inflight_migrated": float(self.inflight_migrated),
            "failover_held_requests": float(self.held_requests),
            "failover_migrations": float(len(self.migrations)),
            "migration_pages": float(sum(m.pages for m in self.migrations)),
            "migration_bytes": float(sum(m.wire_bytes for m in self.migrations)),
            "migration_chunks": float(sum(m.chunks for m in self.migrations)),
            "migration_retries": float(sum(m.retries for m in self.migrations)),
        }


class FailoverController:
    """Drives detection → migration → takeover for one cluster run.

    Owned by :class:`~repro.cluster.engine.ClusterEngine`; stateless
    toward replica engines (they only feed heartbeats), it timestamps
    the health state machine, runs the :class:`KVMigrator`, emits fault
    events to the per-replica tracers, and accumulates the
    :class:`FailoverReport` surfaced in ``ClusterMetrics``.
    """

    def __init__(
        self,
        config: FailoverConfig,
        topology: Optional[Topology],
        num_replicas: int,
        fault_plan=None,
        tracers: Optional[Sequence] = None,
    ):
        self.config = config
        self.num_replicas = num_replicas
        self.detector = FailureDetector(num_replicas, config)
        self.migrator = KVMigrator(topology, config, fault_plan=fault_plan)
        self.tracers = tracers
        self.report = FailoverReport()

    def _emit(self, replica: int, site: str, action: str, t: float, detail: str) -> None:
        if self.tracers is None:
            return
        from repro.obs.events import FaultEvent

        tracer = self.tracers[replica]
        if tracer is not None:
            tracer.on_fault(FaultEvent(
                site=site, action=action, t=t, step_index=-1, req_id=-1,
                detail=detail,
            ))

    def observe_failure(
        self, replica: int, heartbeats: Sequence[float], t_fail: float, mode: str
    ) -> float:
        """Feed a failed replica's heartbeat trail to the detector and
        return ``t_dead`` (when migration may begin).

        Crashes pay the full heartbeat-timeout detection delay; drains
        are planned, so the replica goes draining → dead at ``t_fail``.
        """
        cfg = self.config
        h = self.detector.replicas[replica]
        if mode == "drain":
            h.to("draining", t_fail, "planned drain: handing off KV")
            h.to("dead", t_fail, "drained")
            self.report.drains += 1
        else:
            for t in heartbeats:
                self.detector.heartbeat(replica, t)
            horizon = t_fail + (cfg.dead_after + 1) * cfg.heartbeat_interval
            self.detector.advance(horizon, replicas=[replica])
            if h.state != "dead":  # pragma: no cover - detector invariant
                raise RuntimeError(
                    f"replica {replica} not declared dead by {horizon}"
                )
            self.report.crashes += 1
        t_dead = h.transitions[-1].t
        self.report.detect_seconds += t_dead - t_fail
        for tr in h.transitions:
            if tr.to in ("suspected", "dead", "draining"):
                self._emit(
                    replica, "failover", tr.to, tr.t,
                    f"replica {replica}: {tr.frm} -> {tr.to} ({tr.detail})",
                )
        return t_dead

    def pick_target(
        self, source: int, assigned_tokens: Sequence[float], exclude: Sequence[int] = ()
    ) -> Optional[int]:
        """Least-loaded healthy host for the migrated state (ties → lowest
        id); ``None`` when no other replica can take it (dp=1, or every
        peer is itself failing)."""
        banned = set(exclude) | {source}
        candidates = [r for r in range(self.num_replicas) if r not in banned]
        if not candidates:
            return None
        return min(candidates, key=lambda r: (assigned_tokens[r], r))

    def migrate(
        self, snapshot: dict, t_dead: float, source: int, target: int
    ) -> Tuple[dict, MigrationReport]:
        received, mreport = self.migrator.migrate(
            snapshot, t_dead, source=source, target=target
        )
        self.report.migrations.append(mreport)
        self._emit(
            target, "migration", "received", mreport.t_end,
            f"{mreport.pages} KV pages from replica {source} in "
            f"{mreport.chunks} chunks ({mreport.wire_bytes:.0f}B wire, "
            f"{mreport.retries} retries)",
        )
        return received, mreport

    def note_fallback(self, replica: int, t: float, why: str) -> None:
        self.report.fallbacks += 1
        self._emit(
            replica, "migration", "fallback", t,
            f"replica {replica} recovering in place: {why}",
        )

    def note_recovery(
        self, replica: int, host: int, t_fail: float, t_dead: float,
        resume_at: float, inflight: int,
    ) -> None:
        """Record the recovering → rejoined tail of a failover."""
        h = self.detector.replicas[replica]
        where = "in place" if host == replica else f"on replica {host}"
        h.to("recovering", t_dead, f"takeover {where}")
        t_rejoin = max(resume_at, t_dead + self.config.rejoin_delay)
        h.to("rejoined", t_rejoin, "serving resumed")
        self.report.recovery_seconds += resume_at - t_fail
        self.report.inflight_migrated += inflight
        self._emit(
            host, "failover", "rejoined", t_rejoin,
            f"replica {replica} resumed {where} at t={resume_at:.4f} "
            f"({inflight} in-flight streams carried over)",
        )

    def finish(self) -> FailoverReport:
        self.report.transitions = self.detector.transitions()
        return self.report


def inflight_units(snapshot: dict) -> int:
    """In-flight work units captured in a snapshot's run state: live
    decode streams, partial prefills, and preempted streams."""
    rs = snapshot.get("run_state") or {}
    return (
        len(rs.get("streams") or ())
        + len(rs.get("prefilling") or ())
        + len(rs.get("preempted") or ())
    )


def clamp_arrival(req, t: float):
    """Hold a request at the front door until ``t`` (all replicas
    unhealthy): same rid, so its tokens are unchanged — only its timing."""
    return dataclasses.replace(req, arrival=max(req.arrival, t))
