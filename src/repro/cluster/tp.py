"""Tensor-parallel execution: head sharding + interconnect charging.

Megatron-style TP over the simulated cluster: every shard holds
``1/tp`` of the QO heads, ``1/tp`` of the KV heads (or a replicated KV
head once ``tp > num_kv_heads`` — the GQA over-sharding case), and
``1/tp`` of every GEMM.  The serving engine already prices compute per
shard (``EngineConfig.tensor_parallel`` divides the roofline terms) and
builds its :class:`~repro.kvcache.paged.PagedKVCache` with the *sharded*
KV-head count — so a tp=4 replica's KV pages are 4× smaller and its page
pool holds 4× the tokens, exactly the capacity win TP buys in practice.

What this module adds:

* :func:`plan_tp_sharding` — validates divisibility up front (the engine
  used to fall back silently to unsharded QO heads) and describes the
  shard: per-shard :class:`~repro.core.kernels.HeadConfig`, KV
  replication factor, per-shard KV bytes.
* :class:`TPInterconnect` — prices the two per-layer all-reduces on a
  cluster :class:`~repro.cluster.topology.Topology` (ring formula,
  degradation-aware) instead of the flat NVLink-bus constants, and
  charges the wire traffic to the topology's utilization counters.
  Timing-only: token ids never depend on it.
* :func:`make_tp_engine` — one-call construction of a sharded
  :class:`~repro.serving.engine.ServingEngine` wired to a topology.

Token-exactness invariant: sharding heads and charging all-reduces moves
*time*, never token values — tokens are a pure function of (request id,
generation, position) — so tp=2/tp=4 runs are token-exact against tp=1
by construction, and the tests assert it end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cluster.topology import Topology

__all__ = [
    "TPInterconnect",
    "TPSharding",
    "make_tp_engine",
    "plan_tp_sharding",
]


@dataclass(frozen=True)
class TPSharding:
    """How one model shards across a tensor-parallel group."""

    tp: int
    #: Per-shard head geometry (what each replica's backend and KV cache
    #: are built with); ``repro.core.kernels.HeadConfig``.
    shard_heads: object
    #: Shards holding a copy of each KV head (1 unless ``tp`` exceeds the
    #: model's KV-head count, the GQA over-sharding case).
    kv_replication: int

    def kv_bytes_per_token(self, head_dim: int, itemsize: int = 2) -> float:
        """Per-shard KV bytes for one cached token (K and V)."""
        return 2.0 * self.shard_heads.num_kv_heads * head_dim * itemsize


def plan_tp_sharding(model, tp: int) -> TPSharding:
    """Validate and describe the head sharding for ``tp`` shards.

    Raises :class:`ValueError` when ``tp`` does not divide the model's QO
    heads — a shape that silently degrades to replicated attention in the
    bare engine and is a configuration error at cluster level.
    """
    from repro.core.kernels import HeadConfig

    if tp < 1:
        raise ValueError(f"tensor_parallel must be >= 1, got {tp}")
    if model.num_qo_heads % tp != 0:
        raise ValueError(
            f"tensor_parallel={tp} must divide {model.name}'s "
            f"num_qo_heads={model.num_qo_heads}"
        )
    kv_heads = max(model.num_kv_heads // tp, 1)
    replication = max(tp // model.num_kv_heads, 1)
    shard_heads = HeadConfig(model.num_qo_heads // tp, kv_heads, model.head_dim)
    return TPSharding(tp=tp, shard_heads=shard_heads, kv_replication=replication)


class TPInterconnect:
    """Prices a TP group's per-layer all-reduces on a topology.

    Attached to a :class:`~repro.serving.engine.ServingEngine` via its
    ``interconnect=`` argument: the executor calls
    :meth:`allreduce_per_layer` inside step pricing (so degradation
    windows at simulated time ``t`` slow the affected steps) and
    :meth:`charge_step` once per executed step for traffic accounting.
    """

    def __init__(self, topology: Topology, model, tp: int):
        if tp > topology.world:
            raise ValueError(
                f"tensor-parallel group of {tp} exceeds topology world "
                f"{topology.world}"
            )
        self.topology = topology
        self.model = model
        self.tp = tp

    def _payload_bytes(self, num_tokens: int) -> float:
        """One all-reduce's payload: the layer activations."""
        return float(num_tokens * self.model.hidden_size * self.model.dtype_bytes)

    def allreduce_per_layer(
        self, num_tokens: int, efficiency: float = 1.0, t: float = 0.0
    ) -> float:
        """Two ring all-reduces per layer (post-attention and post-MLP)."""
        if self.tp <= 1:
            return 0.0
        nbytes = self._payload_bytes(num_tokens)
        return 2.0 * self.topology.all_reduce_time(nbytes, self.tp, efficiency, t)

    def charge_step(
        self, num_tokens: int, efficiency: float = 1.0, t: float = 0.0
    ) -> None:
        """Account one step's all-reduce traffic (2 per layer × layers)."""
        if self.tp <= 1:
            return
        nbytes = self._payload_bytes(num_tokens)
        count = 2 * self.model.num_layers
        self.topology.charge(
            "all_reduce",
            count * self.topology.all_reduce_wire_bytes(nbytes, self.tp),
            count * self.topology.all_reduce_time(nbytes, self.tp, efficiency, t),
        )


def make_tp_engine(
    model,
    gpu,
    config=None,
    topology: Optional[Topology] = None,
    backend_factory=None,
    **engine_kwargs,
):
    """Build a tensor-parallel :class:`ServingEngine` on a topology.

    ``config.tensor_parallel`` sets the shard count (validated through
    :func:`plan_tp_sharding`); ``backend_factory(heads, gpu)`` builds the
    attention backend from the per-shard head config (default:
    :class:`~repro.serving.backends.FlashInferBackend`).  Extra keyword
    arguments pass through to the engine (``tracer=``, ``checkpoint=``…).
    """
    from repro.serving.engine import EngineConfig, ServingEngine

    cfg = config if config is not None else EngineConfig()
    plan_tp_sharding(model, cfg.tensor_parallel)  # validate divisibility up front
    interconnect = None
    if topology is not None and cfg.tensor_parallel > 1:
        interconnect = TPInterconnect(topology, model, cfg.tensor_parallel)
    return ServingEngine.from_config(
        cfg, model=model, gpu=gpu, backend_factory=backend_factory,
        interconnect=interconnect, **engine_kwargs,
    )
