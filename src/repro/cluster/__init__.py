"""Multi-GPU cluster simulation: topology, collectives, TP, DP routing.

Layered exactly like a real serving stack:

* :mod:`repro.cluster.topology` — interconnect presets (NVLink ring,
  PCIe host bridge) with per-link bandwidth/latency, ring-collective
  cost formulas, time-windowed degradation, and traffic accounting.
  The single source of truth for link constants (``repro.distributed``
  and ``repro.serving.model`` import theirs from here).
* :mod:`repro.cluster.collectives` — simulated ``all_reduce`` /
  ``all_gather`` / ``reduce_scatter`` / ``p2p_send`` returning exact
  numerics plus the topology-priced cost, including attention-state
  reduction via the associative merge operator.
* :mod:`repro.cluster.router` — pluggable data-parallel routing
  policies (round-robin, least-loaded, power-of-two, session-affinity,
  cache-aware) with the same registry/entry-point pattern as scheduler
  policies.
* :mod:`repro.cluster.tp` — tensor-parallel head sharding and the
  per-layer all-reduce interconnect charged to the topology.
* :mod:`repro.cluster.engine` — the :class:`ClusterEngine` running
  ``dp`` replicas on a shared simulated clock, token-exact against the
  single-GPU engine.
* :mod:`repro.cluster.failover` — heartbeat failure detection, the
  per-replica health state machine, live KV migration over priced
  links, and token-exact takeover.
* :mod:`repro.cluster.disagg` — disaggregated prefill/decode serving:
  role pools, live KV handoff over priced ``kind="handoff"`` links, and
  token-exact decode-side stream resumption.

The topology/collectives/router layer is import-light (no serving
dependency) and loads eagerly; the tp/engine layer imports the serving
stack — which itself imports :mod:`repro.cluster.topology` for link
constants — so those symbols load lazily to keep the cycle one-way.
"""

from __future__ import annotations

import importlib

from repro.cluster.collectives import (
    all_gather,
    all_reduce,
    all_reduce_states,
    p2p_send,
    reduce_scatter,
)
from repro.cluster.router import (
    BREAKER_STATES,
    BreakerConfig,
    BreakerTransition,
    CacheAwarePolicy,
    CircuitBreaker,
    DisaggPolicy,
    IllegalBreakerTransition,
    LeastLoadedPolicy,
    LoadTracker,
    PowerOfTwoPolicy,
    RoundRobinPolicy,
    RoutingPolicy,
    SessionAffinityPolicy,
    available_routing_policies,
    get_routing_policy,
    register_routing_policy,
)
from repro.cluster.topology import (
    ALLREDUCE_LATENCY,
    DEFAULT_LINK_BANDWIDTH,
    NVLINK_ALLREDUCE_BW,
    NVLINK_BUS,
    NVLINK_P2P,
    PCIE_HOST,
    TOPOLOGY_PRESETS,
    Link,
    LinkDegradation,
    Topology,
)

# Symbols whose modules import the serving stack; resolved on first access
# (PEP 562) to keep ``repro.serving.model → repro.cluster.topology``
# import-safe.
_LAZY = {
    "ClusterConfig": "engine",
    "ClusterEngine": "engine",
    "ClusterMetrics": "engine",
    "assign_rids": "engine",
    "expected_tokens": "engine",
    "TPInterconnect": "tp",
    "TPSharding": "tp",
    "make_tp_engine": "tp",
    "plan_tp_sharding": "tp",
    "FailoverConfig": "failover",
    "FailoverController": "failover",
    "FailoverReport": "failover",
    "FailureDetector": "failover",
    "HEALTH_STATES": "failover",
    "HealthSchedule": "failover",
    "HealthTransition": "failover",
    "IllegalTransitionError": "failover",
    "KVMigrator": "failover",
    "MigrationChecksumError": "failover",
    "MigrationError": "failover",
    "MigrationReport": "failover",
    "ReplicaFailure": "failover",
    "ReplicaHealth": "failover",
    "DisaggCoordinator": "disagg",
    "DisaggReport": "disagg",
    "HandoffImport": "disagg",
    "HandoffSink": "disagg",
    "KVHandoff": "disagg",
    "parse_roles": "disagg",
}

__all__ = [
    "ALLREDUCE_LATENCY",
    "DEFAULT_LINK_BANDWIDTH",
    "NVLINK_ALLREDUCE_BW",
    "NVLINK_BUS",
    "NVLINK_P2P",
    "PCIE_HOST",
    "TOPOLOGY_PRESETS",
    "Link",
    "LinkDegradation",
    "Topology",
    "all_gather",
    "all_reduce",
    "all_reduce_states",
    "p2p_send",
    "reduce_scatter",
    "BREAKER_STATES",
    "BreakerConfig",
    "BreakerTransition",
    "CircuitBreaker",
    "IllegalBreakerTransition",
    "LoadTracker",
    "RoutingPolicy",
    "RoundRobinPolicy",
    "LeastLoadedPolicy",
    "PowerOfTwoPolicy",
    "SessionAffinityPolicy",
    "CacheAwarePolicy",
    "DisaggPolicy",
    "available_routing_policies",
    "get_routing_policy",
    "register_routing_policy",
    *sorted(_LAZY),
]


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(importlib.import_module(f"{__name__}.{module}"), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
