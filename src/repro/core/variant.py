"""Attention variant specification (paper §3.2.3, Figure 5).

A variant is declared as a set of *functor expressions* plus extra
parameters, mirroring FlashInfer's CUDA variant classes: the JIT compiler
inlines each functor into the kernel template and compiles a specialized
kernel, so undeclared functors cost nothing (identity transforms are
compiled out, exactly like the CUDA specialization story).

Functors are Python expression strings evaluated over *tiles* (the
vectorized analog of FlashInfer's per-element CUDA functors — same
semantics, array-at-a-time for NumPy efficiency).  Bound names:

========================  =====================================================
``q``, ``k``, ``v``       the tile being transformed, shape ``(rows, head_dim)``
``logits``                score tile ``(q_rows, kv_len)`` (after ``sm_scale``)
``o``                     output tile ``(q_rows, head_dim)``
``q_pos`` / ``kv_pos``    absolute positions, ``(q_rows, 1)`` / ``(1, kv_len)``
                          in logits functors, 1-D in q/k/v/o transforms
``q_head`` / ``kv_head``  head indices (ints)
``params``                namespace of declared parameters
``np``                    NumPy
========================  =====================================================

``logits_mask`` returns a boolean tile (``True`` = keep) combined with the
structural causal mask; masked scores become ``-inf`` before softmax (or 0
weight for non-softmax variants).  Setting ``use_softmax=False`` switches
the whole pipeline — including partial-state composition — to plain
summation (FlashSigmoid support).
"""

from __future__ import annotations

from dataclasses import dataclass
from types import SimpleNamespace
from typing import Any, Dict, Mapping, Optional, Tuple

_FUNCTOR_VARS = {
    "query_transform": ("q", "q_pos", "head", "params", "np"),
    "key_transform": ("k", "kv_pos", "head", "params", "np"),
    "value_transform": ("v", "kv_pos", "head", "params", "np"),
    "logits_transform": ("logits", "q_pos", "kv_pos", "q_head", "kv_head", "params", "np"),
    "logits_mask": ("q_pos", "kv_pos", "q_head", "kv_head", "params", "np"),
    "output_transform": ("o", "q_pos", "head", "params", "np"),
}


@dataclass(frozen=True)
class ParamDecl:
    """An additional variant parameter (the "additional vars" of Figure 5)."""

    name: str
    default: Any = None

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise ValueError(f"parameter name {self.name!r} is not an identifier")


@dataclass(frozen=True)
class AttentionVariant:
    """Declarative attention-variant specification.

    Any functor left ``None`` is compiled out of the kernel.  The spec is
    hashable; the JIT cache is keyed on it together with the kernel traits.
    """

    name: str
    params: Tuple[ParamDecl, ...] = ()
    query_transform: Optional[str] = None
    key_transform: Optional[str] = None
    value_transform: Optional[str] = None
    logits_transform: Optional[str] = None
    logits_mask: Optional[str] = None
    output_transform: Optional[str] = None
    use_softmax: bool = True

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise ValueError(f"variant name {self.name!r} is not an identifier")
        seen = set()
        for p in self.params:
            if p.name in seen:
                raise ValueError(f"duplicate parameter {p.name!r}")
            seen.add(p.name)
        for functor, allowed in _FUNCTOR_VARS.items():
            src = getattr(self, functor)
            if src is None:
                continue
            try:
                compile(src, f"<{self.name}.{functor}>", "eval")
            except SyntaxError as e:
                raise ValueError(
                    f"variant {self.name!r}: {functor} is not a valid expression: {e}"
                ) from e

    def bind_params(self, values: Optional[Mapping[str, Any]] = None) -> SimpleNamespace:
        """Resolve parameter values against declarations.

        Unknown names raise; undeclared-but-required (no default, no value)
        raise — the same contract a CUDA kernel's typed parameter struct
        enforces at compile time.
        """
        values = dict(values or {})
        ns: Dict[str, Any] = {}
        for p in self.params:
            if p.name in values:
                ns[p.name] = values.pop(p.name)
            elif p.default is not None:
                ns[p.name] = p.default
            else:
                raise ValueError(f"variant {self.name!r}: parameter {p.name!r} not provided")
        if values:
            raise ValueError(
                f"variant {self.name!r}: unknown parameters {sorted(values)}"
            )
        return SimpleNamespace(**ns)

    def cache_key(self) -> Tuple:
        """Stable identity for the JIT kernel cache."""
        return (
            self.name,
            tuple(p.name for p in self.params),
            self.query_transform,
            self.key_transform,
            self.value_transform,
            self.logits_transform,
            self.logits_mask,
            self.output_transform,
            self.use_softmax,
        )


#: The vanilla softmax attention variant: everything compiled out.
VANILLA = AttentionVariant(name="vanilla")


def compose_variants(name: str, a: AttentionVariant, b: AttentionVariant) -> AttentionVariant:
    """Combine two variants into one kernel (e.g. soft-cap + sliding window).

    Rules: parameters merge (names must not collide); ``logits_mask``
    expressions AND together; every other functor may be supplied by at
    most one side; ``use_softmax`` must agree.
    """
    if a.use_softmax != b.use_softmax:
        raise ValueError("cannot compose variants with different use_softmax")
    names_a = {p.name for p in a.params}
    clash = names_a & {p.name for p in b.params}
    if clash:
        raise ValueError(f"parameter name collision: {sorted(clash)}")

    def pick(functor: str) -> Optional[str]:
        fa, fb = getattr(a, functor), getattr(b, functor)
        if fa is not None and fb is not None:
            raise ValueError(f"both variants define {functor}; compose manually")
        return fa if fa is not None else fb

    mask_a, mask_b = a.logits_mask, b.logits_mask
    if mask_a is not None and mask_b is not None:
        mask = f"(({mask_a}) & ({mask_b}))"
    else:
        mask = mask_a if mask_a is not None else mask_b

    return AttentionVariant(
        name=name,
        params=a.params + b.params,
        query_transform=pick("query_transform"),
        key_transform=pick("key_transform"),
        value_transform=pick("value_transform"),
        logits_transform=pick("logits_transform"),
        logits_mask=mask,
        output_transform=pick("output_transform"),
        use_softmax=a.use_softmax,
    )
