"""JIT compilation and caching of specialized attention kernels.

``get_kernel(variant, traits)`` renders the kernel template for the variant's
functors, compiles it (``compile`` + ``exec`` — the Python analog of nvcc via
PyTorch's JIT extension mechanism in Figure 5) and memoizes the result.  A
kernel is compiled once per ``(variant, traits)`` pair and reused for the
lifetime of the process, mirroring FlashInfer's "kernels are JIT-compiled at
init time and cached for reuse" (§3.4).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.core.template import render_kernel_source
from repro.core.variant import AttentionVariant
from repro.utils.dtypes import StorageDType


@dataclass(frozen=True)
class KernelTraits:
    """Compile-time kernel configuration (the ``KernelTraits`` of Figure 5).

    Tile sizes resolve at compile time (§3.2.3); the block row size ``B_r``
    of the BSR matrix is aligned with the query tile size ``T_q``.
    """

    head_dim: int
    q_tile: int = 64
    kv_tile: int = 64
    is_sparse: bool = True
    kv_dtype: StorageDType = StorageDType.FP16
    backend: str = "fa2"  # "fa2" (Turing..Ada) or "fa3" (Hopper)

    def __post_init__(self) -> None:
        if self.head_dim <= 0 or self.q_tile <= 0 or self.kv_tile <= 0:
            raise ValueError("head_dim and tile sizes must be positive")
        if self.backend not in ("fa2", "fa3"):
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.backend == "fa3" and self.q_tile != 1 and self.q_tile % 64 != 0:
            raise ValueError(
                "FA3 row tiles must be multiples of 64 (Hopper WGMMA, §3.2.3)"
            )

    @property
    def uses_tensor_cores(self) -> bool:
        """Query tile size 1 uses the CUDA-core microkernel (§3.2.3)."""
        return self.q_tile > 1


#: A compiled work-item kernel: (q, k, v, q_pos, kv_pos, q_head, kv_head,
#: params, sm_scale, causal, kv_tile) -> (o, lse)
KernelFn = Callable[..., Tuple[np.ndarray, np.ndarray]]


@dataclass
class CompiledKernel:
    """A JIT-compiled, cached kernel plus its provenance."""

    fn: KernelFn
    source: str
    variant: AttentionVariant
    traits: KernelTraits
    output_transform: Optional[Callable[..., np.ndarray]]

    def __call__(self, *args, **kwargs):
        return self.fn(*args, **kwargs)


_CACHE: Dict[Tuple, CompiledKernel] = {}
_CACHE_LOCK = threading.Lock()
_COMPILE_COUNT = 0


def get_kernel(variant: AttentionVariant, traits: KernelTraits) -> CompiledKernel:
    """Fetch (compiling on miss) the specialized kernel for a variant."""
    key = (variant.cache_key(), traits)
    with _CACHE_LOCK:
        hit = _CACHE.get(key)
        if hit is not None:
            return hit
    kernel = _compile(variant, traits)
    with _CACHE_LOCK:
        _CACHE.setdefault(key, kernel)
        return _CACHE[key]


def _compile(variant: AttentionVariant, traits: KernelTraits) -> CompiledKernel:
    global _COMPILE_COUNT
    kernel_name = f"attention_kernel_{variant.name}"
    source = render_kernel_source(
        kernel_name=kernel_name,
        variant_name=variant.name,
        query_transform=variant.query_transform,
        key_transform=variant.key_transform,
        value_transform=variant.value_transform,
        logits_transform=variant.logits_transform,
        logits_mask=variant.logits_mask,
        use_softmax=variant.use_softmax,
    )
    namespace = {"np": np}
    code = compile(source, f"<jit:{variant.name}>", "exec")
    exec(code, namespace)
    _COMPILE_COUNT += 1

    out_fn = None
    if variant.output_transform is not None:
        out_src = (
            "def _output_transform(o, q_pos, head, params):\n"
            f"    return ({variant.output_transform})\n"
        )
        out_ns = {"np": np}
        exec(compile(out_src, f"<jit:{variant.name}.output>", "exec"), out_ns)
        out_fn = out_ns["_output_transform"]

    return CompiledKernel(
        fn=namespace[kernel_name],
        source=source,
        variant=variant,
        traits=traits,
        output_transform=out_fn,
    )


def clear_cache() -> None:
    """Drop all compiled kernels (test isolation)."""
    with _CACHE_LOCK:
        _CACHE.clear()


def cache_info() -> Dict[str, int]:
    """Cache statistics: resident kernels and total compilations."""
    with _CACHE_LOCK:
        return {"cached": len(_CACHE), "compiled": _COMPILE_COUNT}
