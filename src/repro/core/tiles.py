"""Tile-size selection heuristics and occupancy modelling (paper §3.2.2).

FlashInfer compiles the FA2 microkernel at query tile sizes
``(1, 16, 32, 64, 128)`` and KV tile sizes ``(32, 64, 128)`` and picks at
plan time:

1. the minimal query tile size meeting or exceeding the batch's average
   query length (with GQA, query length is fused with the head-group
   dimension first — Appendix A);
2. the KV tile size maximizing SM occupancy under shared-memory and
   register constraints.

Query tile size 1 selects the CUDA-core microkernel (tensor-core ``mma``
needs at least 16 rows, §3.2.3); FA3 tensor-core tiles must be multiples of
64 (Hopper WGMMA).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.gpu.spec import GPUSpec
from repro.utils.dtypes import StorageDType

Q_TILE_CANDIDATES = (1, 16, 32, 64, 128)
KV_TILE_CANDIDATES = (32, 64, 128)
FA3_Q_TILE_CANDIDATES = (1, 64, 128)

#: Per-thread register estimate: the accumulator fragment dominates —
#: roughly (q_tile × head_dim + q_tile × kv_tile) fp32 values spread over
#: a 128-thread CTA, plus a fixed base for pointers and softmax state.
_THREADS_PER_CTA = 128
_BASE_REGS_PER_THREAD = 48


def fused_query_length(avg_qo_len: float, group_size: int, fuse: bool = True) -> float:
    """Effective per-tile row count after GQA head-group fusion (App. A)."""
    return avg_qo_len * group_size if fuse else avg_qo_len


def select_q_tile(avg_fused_qo_len: float, backend: str = "fa2") -> int:
    """Minimal compiled query tile size ≥ the average fused query length."""
    candidates = FA3_Q_TILE_CANDIDATES if backend == "fa3" else Q_TILE_CANDIDATES
    for t in candidates:
        if t >= avg_fused_qo_len:
            return t
    return candidates[-1]


def smem_bytes(q_tile: int, kv_tile: int, head_dim: int, kv_dtype: StorageDType) -> int:
    """Shared-memory footprint of one CTA's pipeline stage.

    Q tile + double-buffered K and V tiles (the FA2 software pipeline).
    """
    q_bytes = q_tile * head_dim * 2  # queries staged in fp16
    kv_bytes = 2 * (2 * kv_tile * head_dim * kv_dtype.itemsize)
    return q_bytes + kv_bytes


def regs_per_thread(q_tile: int, kv_tile: int, head_dim: int) -> int:
    """Estimated register pressure per thread."""
    frag = (q_tile * head_dim + q_tile * kv_tile) / _THREADS_PER_CTA
    return _BASE_REGS_PER_THREAD + int(np.ceil(frag))


def ctas_per_sm(
    q_tile: int,
    kv_tile: int,
    head_dim: int,
    kv_dtype: StorageDType,
    spec: GPUSpec,
) -> int:
    """CTAs resident per SM under shared-memory and register limits."""
    by_smem = spec.shared_mem_per_sm // max(smem_bytes(q_tile, kv_tile, head_dim, kv_dtype), 1)
    by_regs = spec.registers_per_sm // (
        regs_per_thread(q_tile, kv_tile, head_dim) * _THREADS_PER_CTA
    )
    return max(min(int(by_smem), int(by_regs), 2), 0)


def select_kv_tile(
    q_tile: int,
    head_dim: int,
    kv_dtype: StorageDType,
    spec: GPUSpec,
) -> int:
    """Largest KV tile that keeps at least one CTA per SM resident, preferring
    higher occupancy then larger tiles (fewer softmax epilogues)."""
    best = None
    for kv_tile in KV_TILE_CANDIDATES:
        occ = ctas_per_sm(q_tile, kv_tile, head_dim, kv_dtype, spec)
        if occ < 1:
            continue
        key = (occ, kv_tile)
        if best is None or key > best[0]:
            best = (key, kv_tile)
    if best is None:
        return KV_TILE_CANDIDATES[0]
    return best[1]


def select_tiles(
    qo_lens: Sequence[int],
    group_size: int,
    head_dim: int,
    kv_dtype: StorageDType,
    spec: GPUSpec,
    backend: str = "fa2",
    fuse_head_groups: bool = True,
) -> Tuple[int, int]:
    """The full §3.2.2 heuristic: ``(q_tile, kv_tile)`` for a batch."""
    qo_lens = np.asarray(qo_lens, dtype=np.float64)
    avg = float(qo_lens.mean()) if qo_lens.size else 1.0
    q_tile = select_q_tile(fused_query_length(avg, group_size, fuse_head_groups), backend)
    kv_tile = select_kv_tile(q_tile, head_dim, kv_dtype, spec)
    return q_tile, kv_tile
