"""Load-balanced work scheduling (paper Algorithm 1, §3.3.1).

The scheduler turns per-request sequence lengths into:

1. a **work queue per CTA** — query tiles × KV chunks × KV heads, assigned
   longest-first through a min-cost priority queue so every CTA finishes at
   roughly the same time (Stream-K-inspired, but without atomic aggregation:
   LLM serving needs deterministic outputs, so the aggregation order is
   planned, not raced);
2. an **index mapping between partial and final outputs** — tiles whose KV
   was split into multiple chunks produce partial attention states in the
   workspace and a merge entry records which slots contract (in ascending
   ``kv_start`` order, hence deterministically) into which output rows.

Tiles whose KV fits one chunk bypass the workspace and write straight to the
final output (the *writethrough* optimization, Appendix D.2).

The scheduler runs on CPU once per generation step; the plan is reusable
across layers with the same sequence lengths (§3.3.1).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.sparse.bsr import ceil_div

#: Default cost-model hyperparameters (α, β) of Algorithm 1: the cost of a
#: tile is ``α·l_q + β·l_kv``.  KV traffic dominates attention time, so β
#: is weighted by the relative byte volume of a KV token vs a query row.
DEFAULT_ALPHA = 1.0
DEFAULT_BETA = 2.0


@dataclass(frozen=True)
class WorkItem:
    """One unit of kernel work: a query tile × KV chunk × KV head.

    ``partial_slot == -1`` means writethrough (single-chunk tile writes the
    final output directly).
    """

    mapping_idx: int
    group: int
    q_tile: int  # tile index within the group
    q_start: int  # first query row within the group
    q_rows: int  # valid query rows in this tile
    kv_start: int
    kv_stop: int
    kv_head: int
    partial_slot: int

    @property
    def kv_len(self) -> int:
        return self.kv_stop - self.kv_start


@dataclass(frozen=True)
class MergeEntry:
    """Contract ``slots`` (ascending kv order) into one output tile."""

    mapping_idx: int
    group: int
    q_start: int
    q_rows: int
    kv_head: int
    slots: Tuple[int, ...]


@dataclass
class SchedulePlan:
    """The full plan for one kernel launch of one mapping."""

    cta_queues: List[List[WorkItem]]
    merges: List[MergeEntry]
    num_partial_slots: int
    q_tile_size: int
    kv_chunk_size: int

    @property
    def num_work_items(self) -> int:
        return sum(len(q) for q in self.cta_queues)

    @property
    def load_balance(self) -> float:
        """Mean/max of per-CTA modelled cost (1.0 = perfect balance)."""
        costs = [
            sum(DEFAULT_ALPHA * w.q_rows + DEFAULT_BETA * w.kv_len for w in q)
            for q in self.cta_queues
        ]
        mx = max(costs) if costs else 0.0
        return (sum(costs) / (len(costs) * mx)) if mx > 0 else 1.0


def plan_schedule(
    qo_lens: Sequence[int],
    kv_lens: Sequence[int],
    q_tile_size: int,
    num_ctas: int,
    num_kv_heads: int = 1,
    mapping_idx: int = 0,
    alpha: float = DEFAULT_ALPHA,
    beta: float = DEFAULT_BETA,
    min_kv_chunk: int = 64,
    chunk_granularity: int = 64,
    split_kv: bool = True,
    causal: bool = False,
    q_pos_offset: Optional[Sequence[int]] = None,
    kv_pos_offset: Optional[Sequence[int]] = None,
) -> SchedulePlan:
    """Algorithm 1: balanced assignment of attention work to CTAs.

    Parameters
    ----------
    qo_lens, kv_lens:
        Per-group query and KV lengths for one mapping.
    q_tile_size:
        The compile-time ``T_q``; block rows ``B_r`` align with it.
    num_ctas:
        Fixed persistent grid size (CUDAGraph requires it constant).
    num_kv_heads:
        KV heads are an extra parallel dimension of the work (Algorithm 1
        omits it "for simplicity"; we schedule it explicitly).
    min_kv_chunk:
        Lower bound on the KV chunk size so chunks stay big enough to be
        bandwidth-efficient.
    chunk_granularity:
        Chunk sizes round up to this granularity (the kernel's KV tile
        size) so no chunk is a sliver smaller than one inner tile.
    split_kv:
        Disable to emulate schedulers without KV splitting (ablations).
    causal / q_pos_offset / kv_pos_offset:
        When causal, each work item's cost weighs only the KV *visible* to
        its query tile (a prefill tile near the top of the triangle does a
        fraction of the last tile's work).  Offsets default to the
        decode/prefill convention (queries are the trailing positions).
    """
    qo_lens = np.asarray(qo_lens, dtype=np.int64)
    kv_lens = np.asarray(kv_lens, dtype=np.int64)
    if qo_lens.shape != kv_lens.shape:
        raise ValueError("qo_lens and kv_lens must align")
    if q_tile_size <= 0 or num_ctas <= 0 or num_kv_heads <= 0:
        raise ValueError("q_tile_size, num_ctas and num_kv_heads must be positive")

    # Step 3: maximum KV chunk size L_kv from total tile-KV work over CTAs.
    n_tiles_per_group = np.where(qo_lens > 0, -(-qo_lens // q_tile_size), 0)
    total_tile_kv = int((n_tiles_per_group * kv_lens).sum()) * num_kv_heads
    if split_kv and total_tile_kv > 0:
        l_kv = max(ceil_div(total_tile_kv, num_ctas), min_kv_chunk)
        l_kv = ceil_div(l_kv, chunk_granularity) * chunk_granularity
    else:
        l_kv = max(int(kv_lens.max(initial=0)), 1)

    if q_pos_offset is None:
        q_pos_offset = kv_lens - qo_lens
    else:
        q_pos_offset = np.asarray(q_pos_offset, dtype=np.int64)
    if kv_pos_offset is None:
        kv_pos_offset = np.zeros(qo_lens.size, dtype=np.int64)
    else:
        kv_pos_offset = np.asarray(kv_pos_offset, dtype=np.int64)

    def visible_kv(w: WorkItem) -> int:
        """KV positions the item actually computes over (causal-aware)."""
        if not causal:
            return w.kv_len
        last_q_pos = int(q_pos_offset[w.group]) + w.q_start + w.q_rows - 1
        vis_end = last_q_pos - int(kv_pos_offset[w.group]) + 1
        return int(np.clip(vis_end - w.kv_start, 0, w.kv_len))

    # Step 4: enumerate work items, assigning partial slots to split tiles.
    items: List[WorkItem] = []
    merges: List[MergeEntry] = []
    next_slot = 0
    for g in range(qo_lens.size):
        lq, lkv = int(qo_lens[g]), int(kv_lens[g])
        if lq == 0:
            continue
        n_tiles = ceil_div(lq, q_tile_size)
        n_chunks = max(ceil_div(lkv, l_kv), 1)
        for t in range(n_tiles):
            q_start = t * q_tile_size
            q_rows = min(q_tile_size, lq - q_start)
            for h in range(num_kv_heads):
                if n_chunks == 1 or lkv == 0:
                    items.append(
                        WorkItem(mapping_idx, g, t, q_start, q_rows, 0, lkv, h, -1)
                    )
                    continue
                slots = []
                for c in range(n_chunks):
                    k0 = c * l_kv
                    k1 = min(k0 + l_kv, lkv)
                    items.append(
                        WorkItem(
                            mapping_idx, g, t, q_start, q_rows, k0, k1, h, next_slot
                        )
                    )
                    slots.append(next_slot)
                    next_slot += 1
                merges.append(
                    MergeEntry(mapping_idx, g, q_start, q_rows, h, tuple(slots))
                )

    # Step 5: longest-first order (stable: ties broken by creation order).
    weights = [visible_kv(w) for w in items]
    order = sorted(range(len(items)), key=lambda i: (-weights[i], i))

    # Steps 6-13: min-cost priority queue over CTAs.
    queues: List[List[WorkItem]] = [[] for _ in range(num_ctas)]
    heap: List[Tuple[float, int]] = [(0.0, c) for c in range(num_ctas)]
    heapq.heapify(heap)
    for i in order:
        w = items[i]
        current_cost, c = heapq.heappop(heap)
        queues[c].append(w)
        heapq.heappush(heap, (current_cost + alpha * w.q_rows + beta * weights[i], c))

    return SchedulePlan(
        cta_queues=queues,
        merges=merges,
        num_partial_slots=next_slot,
        q_tile_size=q_tile_size,
        kv_chunk_size=l_kv,
    )


def plan_signature(
    qo_lens: Sequence[int],
    kv_lens: Sequence[int],
    q_tile_size: int,
    num_ctas: int,
    num_kv_heads: int = 1,
    mapping_idx: int = 0,
    alpha: float = DEFAULT_ALPHA,
    beta: float = DEFAULT_BETA,
    min_kv_chunk: int = 64,
    chunk_granularity: int = 64,
    split_kv: bool = True,
    causal: bool = False,
    q_pos_offset: Optional[Sequence[int]] = None,
    kv_pos_offset: Optional[Sequence[int]] = None,
) -> Tuple:
    """Hashable key over every :func:`plan_schedule` input.

    Two calls with equal signatures produce identical
    :class:`SchedulePlan` objects (the scheduler is deterministic), which
    is what lets a plan cache (§3.3.1: the plan is reusable across layers
    with the same sequence lengths) substitute a cached plan without any
    behavioral difference.  Exact per-group lengths are captured — not a
    bucketed shape class — so a hit can never return a merely-similar
    plan.
    """

    def _bytes(arr) -> Optional[bytes]:
        if arr is None:
            return None
        return np.ascontiguousarray(np.asarray(arr, dtype=np.int64)).tobytes()

    return (
        _bytes(qo_lens), _bytes(kv_lens), int(q_tile_size), int(num_ctas),
        int(num_kv_heads), int(mapping_idx), float(alpha), float(beta),
        int(min_kv_chunk), int(chunk_granularity), bool(split_kv), bool(causal),
        _bytes(q_pos_offset), _bytes(kv_pos_offset),
    )


def plan_unbalanced(
    qo_lens: Sequence[int],
    kv_lens: Sequence[int],
    q_tile_size: int,
    num_ctas: int,
    num_kv_heads: int = 1,
    mapping_idx: int = 0,
) -> SchedulePlan:
    """Baseline scheduler: one whole-KV work item per tile, dealt in order.

    No KV splitting, no cost balancing — items go to CTAs round-robin in
    enumeration order, the discipline of a conventional grid launch where
    blocks map to (request, tile, head) coordinates.  Used by ablations and
    the FlashAttention-library baseline.
    """
    qo_lens = np.asarray(qo_lens, dtype=np.int64)
    kv_lens = np.asarray(kv_lens, dtype=np.int64)
    items: List[WorkItem] = []
    for g in range(qo_lens.size):
        lq, lkv = int(qo_lens[g]), int(kv_lens[g])
        if lq == 0:
            continue
        for t in range(ceil_div(lq, q_tile_size)):
            q_start = t * q_tile_size
            q_rows = min(q_tile_size, lq - q_start)
            for h in range(num_kv_heads):
                items.append(WorkItem(mapping_idx, g, t, q_start, q_rows, 0, lkv, h, -1))
    queues: List[List[WorkItem]] = [[] for _ in range(num_ctas)]
    for i, w in enumerate(items):
        queues[i % num_ctas].append(w)
    return SchedulePlan(
        cta_queues=queues,
        merges=[],
        num_partial_slots=0,
        q_tile_size=q_tile_size,
        kv_chunk_size=max(int(kv_lens.max(initial=0)), 1),
    )
