"""FlashInfer's core: attention states, JIT kernels, scheduler, wrappers."""

from repro.core.state import AttentionState, merge_all, merge_states, merge_states_sum
from repro.core.variant import VANILLA, AttentionVariant, ParamDecl, compose_variants
from repro.core.jit import CompiledKernel, KernelTraits, cache_info, clear_cache, get_kernel
from repro.core.scheduler import (
    MergeEntry,
    SchedulePlan,
    WorkItem,
    plan_schedule,
    plan_signature,
    plan_unbalanced,
)
from repro.core.composition import contract_entry, contraction_cost, distribute_merges
from repro.core.tiles import select_kv_tile, select_q_tile, select_tiles
from repro.core.kernels import HeadConfig, reference_attention, run_mapping, work_item_cost
from repro.core.wrapper import BatchAttentionWrapper, ComposableAttentionWrapper

__all__ = [
    "AttentionState",
    "merge_all",
    "merge_states",
    "merge_states_sum",
    "VANILLA",
    "AttentionVariant",
    "ParamDecl",
    "compose_variants",
    "CompiledKernel",
    "KernelTraits",
    "cache_info",
    "clear_cache",
    "get_kernel",
    "MergeEntry",
    "SchedulePlan",
    "WorkItem",
    "plan_schedule",
    "plan_signature",
    "plan_unbalanced",
    "contract_entry",
    "contraction_cost",
    "distribute_merges",
    "select_kv_tile",
    "select_q_tile",
    "select_tiles",
    "HeadConfig",
    "reference_attention",
    "run_mapping",
    "work_item_cost",
    "BatchAttentionWrapper",
    "ComposableAttentionWrapper",
]
