"""The attention-composition (contraction) kernel.

Split-KV tiles produce partial attention states in the workspace; this
kernel contracts each tile's states with ``⊕`` in the planned order —
variable-length aggregation, deterministic for identical sequence lengths
(§3.3.1).  Like the attention kernel it is persistent: merge entries are
distributed over the same fixed CTA grid, and its memory traffic is
accounted with the same cost model.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.core.scheduler import MergeEntry
from repro.core.state import merge_states, merge_states_sum
from repro.gpu.cost import TileCost


def contract_entry(
    entry: MergeEntry,
    partial_o: np.ndarray,
    partial_lse: np.ndarray,
    use_softmax: bool = True,
) -> Tuple[np.ndarray, np.ndarray]:
    """Contract one merge entry's slots into a final ``(o, lse)`` tile.

    ``partial_o``: ``(slots, rows, head_dim)``; ``partial_lse``:
    ``(slots, rows)``.  Slots are merged left-to-right in the planned
    (ascending ``kv_start``) order — ``⊕`` is associative so the result is
    exact, and the fixed order makes it bit-deterministic.
    """
    slots = entry.slots
    if not slots:
        raise ValueError("merge entry with no slots")
    o = partial_o[slots[0]]
    lse = partial_lse[slots[0]]
    for s in slots[1:]:
        if use_softmax:
            o, lse = merge_states(o, lse, partial_o[s], partial_lse[s])
        else:
            o = merge_states_sum(o, partial_o[s])
    return o, lse


def contraction_cost(
    entry: MergeEntry, rows: int, head_dim: int, partial_itemsize: int = 4
) -> TileCost:
    """Memory footprint of contracting one merge entry.

    Reads every slot's ``rows × (head_dim + 1)`` partial state, writes one
    final tile.  Contraction is bandwidth-bound (a handful of FLOPs per
    element), so ``flops`` counts the exp/log/FMA work only loosely.
    """
    n = len(entry.slots)
    state_bytes = rows * (head_dim + 1) * partial_itemsize
    return TileCost(
        flops=4.0 * n * rows * head_dim,
        padded_flops=4.0 * n * rows * head_dim,
        bytes_read=float(n * state_bytes),
        bytes_written=float(rows * head_dim * partial_itemsize),
        uses_tensor_cores=False,
    )


def distribute_merges(
    merges: Sequence[MergeEntry], num_ctas: int
) -> List[List[int]]:
    """Round-robin merge entries over the persistent CTA grid.

    Entries are tiny and near-uniform (≤ 2·#CTA of them exist, Appendix
    D.3), so round-robin is adequate; determinism comes from the fixed
    order within each queue.
    """
    queues: List[List[int]] = [[] for _ in range(num_ctas)]
    for i in range(len(merges)):
        queues[i % num_ctas].append(i)
    return queues
