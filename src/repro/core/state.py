"""Attention states and the ``⊕`` composition operator (paper §2.2).

An *attention state* over an index set ``I`` is the pair
``(O(I), LSE(I))`` of the attention output and the log-sum-exp of the
attention scores.  States over disjoint index sets compose::

    (O, LSE)(I ∪ J) = (O, LSE)(I) ⊕ (O, LSE)(J)

with ``⊕`` associative and commutative, which is what lets FlashInfer split
long KVs into chunks, compute partial states anywhere, and contract them in
a planned (deterministic) order.  FlashInfer adopts the attention state as
the canonical output of every attention kernel and ``⊕`` as the standard
reduction (the analog of ``+`` in GEMM split-K).

States are stored head-major: ``o`` has shape ``(..., head_dim)`` and
``lse`` the matching ``(...)`` batch shape.  An empty state (no keys seen)
has ``lse = -inf`` and ``o = 0`` — the identity element of ``⊕``.

For non-softmax variants (e.g. FlashSigmoid), outputs compose by plain
addition; see :func:`merge_states_sum`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

import numpy as np


@dataclass
class AttentionState:
    """A (possibly batched) attention state ``(O, LSE)``.

    ``o``: float array ``(..., head_dim)``; ``lse``: float array ``(...)``.
    """

    o: np.ndarray
    lse: np.ndarray

    def __post_init__(self) -> None:
        self.o = np.asarray(self.o, dtype=np.float64)
        self.lse = np.asarray(self.lse, dtype=np.float64)
        if self.o.shape[:-1] != self.lse.shape:
            raise ValueError(
                f"o batch shape {self.o.shape[:-1]} != lse shape {self.lse.shape}"
            )

    @classmethod
    def identity(cls, batch_shape: Tuple[int, ...], head_dim: int) -> "AttentionState":
        """The ``⊕`` identity: zero output, ``-inf`` scale."""
        return cls(
            o=np.zeros(batch_shape + (head_dim,), dtype=np.float64),
            lse=np.full(batch_shape, -np.inf, dtype=np.float64),
        )

    def merge(self, other: "AttentionState") -> "AttentionState":
        """``self ⊕ other`` (associative, commutative, numerically safe)."""
        o, lse = merge_states(self.o, self.lse, other.o, other.lse)
        return AttentionState(o, lse)

    def __matmul__(self, other: "AttentionState") -> "AttentionState":
        return self.merge(other)


def merge_states(
    o_a: np.ndarray, lse_a: np.ndarray, o_b: np.ndarray, lse_b: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """The ``⊕`` operator on raw arrays (vectorized over batch dims).

    Uses the max-shifted form for numerical safety::

        m   = max(lse_a, lse_b)
        w_x = exp(lse_x - m)
        O   = (w_a · O_a + w_b · O_b) / (w_a + w_b)
        LSE = m + log(w_a + w_b)

    ``lse = -inf`` (empty set) is the identity and propagates correctly.
    """
    o_a = np.asarray(o_a, dtype=np.float64)
    o_b = np.asarray(o_b, dtype=np.float64)
    lse_a = np.asarray(lse_a, dtype=np.float64)
    lse_b = np.asarray(lse_b, dtype=np.float64)

    m = np.maximum(lse_a, lse_b)
    # Where both sides are empty the result is empty; avoid NaN from -inf - -inf.
    both_empty = np.isneginf(m)
    m_safe = np.where(both_empty, 0.0, m)
    with np.errstate(invalid="ignore"):
        w_a = np.exp(np.where(np.isneginf(lse_a), -np.inf, lse_a - m_safe))
        w_b = np.exp(np.where(np.isneginf(lse_b), -np.inf, lse_b - m_safe))
    w_sum = w_a + w_b
    denom = np.where(w_sum == 0.0, 1.0, w_sum)
    o = (w_a[..., None] * o_a + w_b[..., None] * o_b) / denom[..., None]
    with np.errstate(divide="ignore"):
        lse = np.where(both_empty, -np.inf, m_safe + np.log(denom))
    return o, lse


def merge_states_sum(o_a: np.ndarray, o_b: np.ndarray) -> np.ndarray:
    """Composition for variants without softmax: plain output addition."""
    return np.asarray(o_a, dtype=np.float64) + np.asarray(o_b, dtype=np.float64)


def merge_all(states: Iterable[AttentionState]) -> AttentionState:
    """Left fold of ``⊕`` over an iterable of states (order-insensitive up to
    floating-point roundoff, but the fold order is the deterministic
    contraction order the scheduler plans)."""
    it = iter(states)
    try:
        acc = next(it)
    except StopIteration:
        raise ValueError("merge_all of no states (identity needs a shape)") from None
    for s in it:
        acc = acc.merge(s)
    return acc
