"""Vectorized cost-only plan simulation.

``run_mapping`` walks work items in Python because the numeric kernels need
per-item tensor slices.  Benchmarks and the serving engine, however, run
thousands of cost-only steps (``compute=False``) where only the simulated
GPU report matters — this module computes identical
:class:`~repro.gpu.cost.TileCost` aggregates with NumPy over the *serialized
plan arrays* (the same arrays the workspace holds), typically two orders of
magnitude faster.  ``tests/test_simulate.py`` pins the equivalence against
the per-item path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.kernels import PARTIAL_ITEMSIZE, Q_ITEMSIZE, HeadConfig
from repro.gpu.cost import TRANSACTION_BYTES, KernelCostModel
from repro.gpu.executor import PersistentKernelExecutor, SimReport
from repro.sparse.layout import AttentionMapping
from repro.utils.dtypes import StorageDType

# Column indices of the serialized work-item table (wrapper._write_plan).
COL_MAPPING, COL_GROUP, COL_QTILE, COL_QSTART, COL_QROWS = 0, 1, 2, 3, 4
COL_KVSTART, COL_KVSTOP, COL_KVHEAD, COL_SLOT = 5, 6, 7, 8


def _causal_processed(
    lo: np.ndarray, rows: np.ndarray, chunk: np.ndarray, kv_tile: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized causal accounting.

    For each item, query row ``i`` sees ``clip(lo + i, 0, chunk)`` KV
    columns (``lo = q_pos0 - kv_pos0 + 1``).  Returns ``(useful_cols,
    processed_kv)`` where ``processed_kv`` rounds the largest row count up
    to the KV tile (tiles fully above the diagonal are skipped).
    """
    r = rows.astype(np.float64)
    lo = lo.astype(np.float64)
    c = chunk.astype(np.float64)
    a = np.clip(-lo, 0.0, r)  # rows with zero visible columns
    b = np.clip(c - lo, 0.0, r)  # rows below the saturated region
    mid = np.maximum(b - a, 0.0)
    # Sum of (lo + i) for i in [a, b):
    mid_sum = mid * lo + (a + b - 1.0) * mid / 2.0
    useful = mid_sum + (r - b) * c
    max_count = np.clip(lo + r - 1.0, 0.0, c)
    processed = np.minimum(c, np.ceil(max_count / kv_tile) * kv_tile)
    processed[max_count <= 0] = 0.0
    return useful, processed


@dataclass
class PlanCostArrays:
    """Per-item cost streams plus aggregate accounting."""

    serial: np.ndarray  # seconds of non-memory stream per item
    mem: np.ndarray  # effective memory bytes per item
    flops: np.ndarray  # useful FLOPs per item
    traffic: np.ndarray  # logical bytes (read+written) per item


def item_cost_arrays(
    item_arr: np.ndarray,
    mapping: AttentionMapping,
    heads: HeadConfig,
    kv_tile: int,
    kv_dtype: StorageDType,
    q_tile_size: int,
    fuse_head_groups: bool,
    uses_tensor_cores: bool,
    sparse_gather: bool,
    cost_model: KernelCostModel,
    compute_share: float,
    compute_penalty: float = 1.0,
) -> PlanCostArrays:
    """Vectorized equivalent of :func:`repro.core.kernels.work_item_cost`
    followed by the executor's stream conversion."""
    if item_arr.size == 0:
        z = np.zeros(0)
        return PlanCostArrays(z, z, z, z)
    g_eff = heads.group_size if fuse_head_groups else 1
    d = heads.head_dim
    group = item_arr[:, COL_GROUP]
    rows = item_arr[:, COL_QROWS].astype(np.float64)
    chunk = (item_arr[:, COL_KVSTOP] - item_arr[:, COL_KVSTART]).astype(np.float64)
    q_pos0 = mapping.q_pos_offset[group] + item_arr[:, COL_QSTART]
    kv_pos0 = mapping.kv_pos_offset[group] + item_arr[:, COL_KVSTART]

    if mapping.causal:
        lo = (q_pos0 - kv_pos0 + 1).astype(np.float64)
        useful_cols, processed = _causal_processed(lo, rows, chunk, kv_tile)
    else:
        useful_cols = rows * chunk
        processed = chunk

    flops = 4.0 * d * useful_cols * g_eff
    padded = 4.0 * d * (q_tile_size * g_eff) * processed * compute_penalty

    # KV re-reads across a group's query tiles hit L2; only the first read
    # pays HBM traffic (see kernels.kv_reuse_factor).
    lq = mapping.qo_lens[group].astype(np.float64)
    n_tiles = np.maximum(np.ceil(lq / q_tile_size), 1.0)
    if mapping.causal:
        first_row = (
            mapping.kv_pos_offset[group] + item_arr[:, COL_KVSTART]
            - mapping.q_pos_offset[group]
        ).astype(np.float64)
        first_row = np.clip(first_row, 0.0, np.maximum(lq - 1.0, 0.0))
        reuse = np.maximum(n_tiles - np.floor(first_row / q_tile_size), 1.0)
    else:
        reuse = n_tiles
    kv_bytes = processed * d * 2 * kv_dtype.itemsize / reuse
    q_bytes = rows * g_eff * d * Q_ITEMSIZE
    is_partial = item_arr[:, COL_SLOT] >= 0
    out_bytes = np.where(
        is_partial,
        rows * g_eff * (d + 1) * PARTIAL_ITEMSIZE,
        rows * g_eff * d * Q_ITEMSIZE,
    )
    bytes_read = kv_bytes + q_bytes

    if sparse_gather:
        bc = mapping.kv.block_size
        run_bytes = np.minimum(bc, np.maximum(processed, 1.0)) * d * kv_dtype.itemsize
        waste = np.ceil(run_bytes / TRANSACTION_BYTES) * TRANSACTION_BYTES / run_bytes
        eff_read = np.where(processed > 0, bytes_read * waste, bytes_read)
        segments = np.where(processed > 0, 2.0 * np.ceil(processed / bc), 0.0)
    else:
        eff_read = bytes_read
        segments = np.zeros_like(bytes_read)

    spec = cost_model.spec
    roof = (
        spec.sm_fp16_flops * cost_model.mma_efficiency
        if uses_tensor_cores
        else spec.sm_cuda_core_flops
    ) * compute_share
    serial = (
        padded / roof
        + segments * cost_model.gather_issue_overhead
        + cost_model.tile_latency
    )
    mem = (eff_read + out_bytes) / cost_model.mem_efficiency
    return PlanCostArrays(
        serial=serial,
        mem=mem,
        flops=flops,
        traffic=bytes_read + out_bytes,
    )


def merge_cost_arrays(
    n_slots_per_merge: np.ndarray,
    rows_eff: np.ndarray,
    head_dim: int,
    cost_model: KernelCostModel,
    compute_share: float,
) -> PlanCostArrays:
    """Vectorized contraction-kernel costs (one entry per merge)."""
    if n_slots_per_merge.size == 0:
        z = np.zeros(0)
        return PlanCostArrays(z, z, z, z)
    n = n_slots_per_merge.astype(np.float64)
    r = rows_eff.astype(np.float64)
    state_bytes = r * (head_dim + 1) * PARTIAL_ITEMSIZE
    flops = 4.0 * n * r * head_dim
    bytes_read = n * state_bytes
    bytes_written = r * head_dim * PARTIAL_ITEMSIZE
    spec = cost_model.spec
    roof = spec.sm_cuda_core_flops * compute_share
    serial = flops / roof + cost_model.tile_latency
    mem = (bytes_read + bytes_written) / cost_model.mem_efficiency
    return PlanCostArrays(serial, mem, flops, bytes_read + bytes_written)


def simulate_queues(
    executor: PersistentKernelExecutor,
    costs: PlanCostArrays,
    cta_of_item: np.ndarray,
    num_ctas: int,
) -> SimReport:
    """Aggregate per-item streams to CTAs and run the shared-bandwidth drain."""
    serial = np.zeros(num_ctas)
    mem = np.zeros(num_ctas)
    if costs.serial.size:
        np.add.at(serial, cta_of_item, costs.serial)
        np.add.at(mem, cta_of_item, costs.mem)
    if executor.fault_injector is not None:
        executor._consult_injector(serial, mem)
    finish = executor._drain(serial, mem, max(1, -(-num_ctas // executor.spec.num_sms)))
    makespan = float(finish.max(initial=0.0)) + executor.spec.kernel_dispatch_overhead
    return SimReport(
        makespan=makespan,
        total_flops=float(costs.flops.sum()),
        total_bytes=float(costs.traffic.sum()),
        num_tiles=int(costs.serial.size),
        num_ctas=num_ctas,
        per_cta_time=finish.tolist(),
    )


def simulate_grid(
    executor: PersistentKernelExecutor,
    costs: PlanCostArrays,
    ctas_per_sm: int = 1,
) -> SimReport:
    """Grid-launch simulation from cost arrays (baseline path)."""
    slots = executor.spec.num_sms * max(1, ctas_per_sm)
    serial, mem = costs.serial, costs.mem
    if executor.fault_injector is not None:
        serial, mem = serial.copy(), mem.copy()
        executor._consult_injector(serial, mem)
    makespan, slot_busy = executor._drain_dynamic(
        list(zip(serial.tolist(), mem.tolist())),
        slots,
        max(1, ctas_per_sm),
    )
    return SimReport(
        makespan=makespan + executor.spec.kernel_dispatch_overhead,
        total_flops=float(costs.flops.sum()),
        total_bytes=float(costs.traffic.sum()),
        num_tiles=int(costs.serial.size),
        num_ctas=slots,
        per_cta_time=slot_busy,
    )
