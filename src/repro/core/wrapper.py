"""The user-facing attention wrappers (paper §3.4, Listing 1).

:class:`BatchAttentionWrapper` owns one attention *format*: at construction
it JIT-compiles the variant kernel for fixed tile sizes and pins the
persistent grid size; ``plan()`` runs the load-balanced scheduler on CPU and
copies the plan arrays into fixed-offset workspace sections; ``run()``
executes the persistent attention + contraction kernels, reading the plan
*from the workspace* — so a CUDAGraph replay of ``run`` picks up fresh plan
data without changing any launch argument.

:class:`ComposableAttentionWrapper` stacks one wrapper per format
(§3.1.2 / §3.4: "FlashInfer creates multiple attention wrappers, each with
distinct block sizes"), merges the per-format partial states with ``⊕`` and
applies the variant's output transform once at the end.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.core.composition import distribute_merges
from repro.core.jit import CompiledKernel, KernelTraits, get_kernel
from repro.core.kernels import (
    PARTIAL_ITEMSIZE,
    HeadConfig,
    run_mapping,
)
from repro.core.scheduler import (
    MergeEntry,
    SchedulePlan,
    WorkItem,
    plan_schedule,
    plan_signature,
)
from repro.core.tiles import ctas_per_sm, select_kv_tile, select_q_tile
from repro.core.variant import AttentionVariant
from repro.gpu.cost import KernelCostModel, TileCost
from repro.gpu.cudagraph import CudaGraph
from repro.gpu.executor import PersistentKernelExecutor, SimReport
from repro.gpu.spec import A100_40G, GPUSpec
from repro.gpu.workspace import WorkspaceBuffer
from repro.sparse.bsr import ceil_div
from repro.sparse.composable import ComposableFormat
from repro.sparse.layout import AttentionMapping
from repro.core.state import merge_states
from repro.utils.dtypes import StorageDType

_wrapper_counter = itertools.count()

_ITEM_FIELDS = 9  # mapping, group, q_tile, q_start, q_rows, kv_start, kv_stop, kv_head, slot
_MERGE_FIELDS = 5  # mapping, group, q_start, q_rows, kv_head


class BatchAttentionWrapper:
    """Plan/run attention for one block-sparse format.

    Parameters
    ----------
    variant:
        The attention variant specification (JIT-compiled at init, §3.4).
    heads:
        Head geometry (query heads, KV heads, head dim).
    workspace:
        User-allocated buffer for plan info and split-KV partial outputs.
    gpu:
        Simulated target device; chooses the FA2/FA3 template (Hopper → FA3).
    avg_qo_len:
        Task-information hint: expected average query length per group
        (1 for decode).  Fixes the compile-time query tile size.
    kv_dtype:
        KV-cache storage precision (fp16 default; fp8 for Appendix F).
    fuse_head_groups:
        GQA head-group fusion (Appendix A).
    sparse_gather:
        False for contiguous (ragged dense) KV — enables TMA on Hopper.
    max_batch_size / max_total_qo:
        Upper bounds for workspace sizing (Appendix D.3).  Default: pinned
        from the first ``plan`` call.
    sm_limit:
        Restrict the persistent grid to this many SMs, leaving the rest
        for horizontally fused kernels running in other streams
        (Appendix E / Nanoflow-style overlap).
    """

    def __init__(
        self,
        variant: AttentionVariant,
        heads: HeadConfig,
        workspace: WorkspaceBuffer,
        gpu: GPUSpec = A100_40G,
        avg_qo_len: float = 1.0,
        kv_dtype: StorageDType = StorageDType.FP16,
        fuse_head_groups: bool = True,
        sparse_gather: bool = True,
        causal_hint: bool = True,
        max_batch_size: Optional[int] = None,
        max_total_qo: Optional[int] = None,
        cost_model: Optional[KernelCostModel] = None,
        name: Optional[str] = None,
        backend: Optional[str] = None,
        q_tile: Optional[int] = None,
        kv_tile: Optional[int] = None,
        split_kv: bool = True,
        sm_limit: Optional[int] = None,
    ):
        self.variant = variant
        self.heads = heads
        self.workspace = workspace
        self.gpu = gpu
        self.kv_dtype = kv_dtype
        self.fuse_head_groups = fuse_head_groups
        self.sparse_gather = sparse_gather
        self.split_kv = split_kv
        self.name = name or f"attn{next(_wrapper_counter)}"

        self.backend = backend or ("fa3" if gpu.supports_tma else "fa2")
        g_eff = heads.group_size if fuse_head_groups else 1
        fused_len = avg_qo_len * g_eff
        self.q_tile = q_tile if q_tile is not None else select_q_tile(fused_len, self.backend)
        self.kv_tile = (
            kv_tile
            if kv_tile is not None
            else select_kv_tile(self.q_tile, heads.head_dim, kv_dtype, gpu)
        )
        # Sparse gathering on Hopper cannot use TMA and pays register
        # pressure: smaller KV tiles plus a compute penalty (Appendix B).
        self.compute_penalty = 1.0
        if self.backend == "fa3" and sparse_gather:
            self.kv_tile = min(self.kv_tile, 64)
            self.compute_penalty = 1.06

        self.traits = KernelTraits(
            head_dim=heads.head_dim,
            q_tile=self.q_tile,
            kv_tile=self.kv_tile,
            is_sparse=sparse_gather,
            kv_dtype=kv_dtype,
            backend=self.backend,
        )
        self.kernel: CompiledKernel = get_kernel(variant, self.traits)

        occ = max(ctas_per_sm(self.q_tile, self.kv_tile, heads.head_dim, kv_dtype, gpu), 1)
        #: Persistent grid size, fixed for CUDAGraph compatibility (§3.3.1).
        #: ``sm_limit`` reserves the remaining SMs for concurrently running
        #: kernels (Nanoflow-style GEMM/communication overlap, Appendix E).
        if sm_limit is not None:
            if not 0 < sm_limit <= gpu.num_sms:
                raise ValueError(
                    f"sm_limit must be in [1, {gpu.num_sms}], got {sm_limit}"
                )
            self.num_ctas = sm_limit * occ
        else:
            self.num_ctas = gpu.num_sms * occ

        # Queries tile over rows; GQA fuses g rows per query (Appendix A).
        self._sched_q_tile = max(self.q_tile // g_eff, 1)
        self._max_rows_eff = self._sched_q_tile * g_eff

        self._max_batch_size = max_batch_size
        self._max_total_qo = max_total_qo
        self._sections_ready = False
        self._mapping: Optional[AttentionMapping] = None
        self._params = variant.bind_params({}) if not variant.params else None
        self._sm_scale: float = 1.0 / float(np.sqrt(heads.head_dim))
        self.executor = PersistentKernelExecutor(gpu, cost_model)
        self.last_report: Optional[SimReport] = None
        self.plan_count = 0
        #: Optional duck-typed :class:`repro.faults.OutputGuard`; when set,
        #: every compute-path :meth:`run` checks its output through it
        #: (raising ``NumericalFault`` on NaN/Inf).  ``None`` costs one
        #: attribute check.
        self.output_guard = None
        #: Optional duck-typed :class:`repro.serving.PlanCache`; when set,
        #: :meth:`plan` consults it before recomputing the CPU schedule.
        #: The signature captures every scheduler input, so a hit returns a
        #: plan identical to the one it replaces (§3.3.1).
        self.plan_cache = None

    # -- workspace layout ---------------------------------------------------

    def _section(self, suffix: str) -> str:
        return f"{self.name}.{suffix}"

    def _ensure_sections(self, batch_size: int, total_qo: int) -> None:
        if self._sections_ready:
            return
        if self._max_batch_size is None:
            self._max_batch_size = batch_size
        if self._max_total_qo is None:
            self._max_total_qo = total_qo
        heads_dim = (
            self.heads.num_kv_heads if self.fuse_head_groups else self.heads.num_qo_heads
        )
        max_tiles = (
            self._max_batch_size + ceil_div(self._max_total_qo, self._sched_q_tile)
        ) * heads_dim
        # Split-KV produces at most 2·#CTA partial outputs (Appendix D.3).
        max_slots = 2 * self.num_ctas
        max_items = max_tiles + max_slots
        ws = self.workspace
        ws.allocate_section(self._section("counts"), 8 * 8)
        ws.allocate_section(self._section("work_items"), max_items * _ITEM_FIELDS * 8)
        ws.allocate_section(self._section("cta_indptr"), (self.num_ctas + 1) * 8)
        ws.allocate_section(self._section("merge_meta"), max_slots * _MERGE_FIELDS * 8)
        ws.allocate_section(self._section("merge_indptr"), (max_slots + 1) * 8)
        ws.allocate_section(self._section("merge_slots"), max_slots * 8)
        d = self.heads.head_dim
        ws.allocate_section(
            self._section("partial_o"),
            max_slots * self._max_rows_eff * d * PARTIAL_ITEMSIZE,
        )
        ws.allocate_section(
            self._section("partial_lse"), max_slots * self._max_rows_eff * PARTIAL_ITEMSIZE
        )
        self._max_slots = max_slots
        self._sections_ready = True

    # -- plan ----------------------------------------------------------------

    def plan(
        self,
        mapping: AttentionMapping,
        params: Optional[dict] = None,
        sm_scale: Optional[float] = None,
    ) -> SchedulePlan:
        """Run the CPU scheduler and stage the plan into the workspace.

        Called once per generation step; not capturable by CUDAGraph (it is
        host code), exactly as in Listing 1.
        """
        heads_dim = (
            self.heads.num_kv_heads if self.fuse_head_groups else self.heads.num_qo_heads
        )
        cache = self.plan_cache
        plan = None
        if cache is not None:
            key = plan_signature(
                mapping.qo_lens,
                mapping.kv.kv_lens,
                self._sched_q_tile,
                self.num_ctas,
                num_kv_heads=heads_dim,
                chunk_granularity=self.kv_tile,
                split_kv=self.split_kv,
                causal=mapping.causal,
                q_pos_offset=mapping.q_pos_offset,
                kv_pos_offset=mapping.kv_pos_offset,
            )
            plan = cache.get(key)
        if plan is None:
            plan = plan_schedule(
                mapping.qo_lens,
                mapping.kv.kv_lens,
                self._sched_q_tile,
                self.num_ctas,
                num_kv_heads=heads_dim,
                chunk_granularity=self.kv_tile,
                split_kv=self.split_kv,
                causal=mapping.causal,
                q_pos_offset=mapping.q_pos_offset,
                kv_pos_offset=mapping.kv_pos_offset,
            )
            if cache is not None:
                cache.put(key, plan)
        self._ensure_sections(mapping.num_groups, mapping.total_qo)
        if plan.num_partial_slots > self._max_slots:
            raise ValueError(
                f"plan needs {plan.num_partial_slots} partial slots but the "
                f"workspace was sized for {self._max_slots}; raise "
                f"max_batch_size/max_total_qo (Appendix D.3)"
            )
        item_capacity = self.workspace.section(self._section("work_items")).nbytes // (
            _ITEM_FIELDS * 8
        )
        if plan.num_work_items > item_capacity:
            raise ValueError(
                f"plan has {plan.num_work_items} work items but the workspace "
                f"was sized for {item_capacity}; pass larger "
                f"max_batch_size/max_total_qo upper bounds at wrapper "
                f"construction (Appendix D.3)"
            )
        self._write_plan(plan)
        self._mapping = mapping
        self._params = self.variant.bind_params(params)
        if sm_scale is not None:
            self._sm_scale = float(sm_scale)
        self.plan_count += 1
        return plan

    def _write_plan(self, plan: SchedulePlan) -> None:
        items: List[WorkItem] = [w for q in plan.cta_queues for w in q]
        cta_indptr = np.zeros(self.num_ctas + 1, dtype=np.int64)
        np.cumsum([len(q) for q in plan.cta_queues], out=cta_indptr[1:])
        item_arr = np.asarray(
            [
                (
                    w.mapping_idx, w.group, w.q_tile, w.q_start, w.q_rows,
                    w.kv_start, w.kv_stop, w.kv_head, w.partial_slot,
                )
                for w in items
            ],
            dtype=np.int64,
        ).reshape(len(items), _ITEM_FIELDS)
        merge_meta = np.asarray(
            [
                (m.mapping_idx, m.group, m.q_start, m.q_rows, m.kv_head)
                for m in plan.merges
            ],
            dtype=np.int64,
        ).reshape(len(plan.merges), _MERGE_FIELDS)
        merge_indptr = np.zeros(len(plan.merges) + 1, dtype=np.int64)
        np.cumsum([len(m.slots) for m in plan.merges], out=merge_indptr[1:])
        merge_slots = np.asarray(
            [s for m in plan.merges for s in m.slots], dtype=np.int64
        )
        counts = np.asarray(
            [
                len(items), len(plan.merges), merge_slots.size,
                plan.num_partial_slots, plan.q_tile_size, plan.kv_chunk_size,
                0, 0,
            ],
            dtype=np.int64,
        )
        ws = self.workspace
        ws.write(self._section("counts"), counts)
        if item_arr.size:
            ws.write(self._section("work_items"), item_arr)
        ws.write(self._section("cta_indptr"), cta_indptr)
        if merge_meta.size:
            ws.write(self._section("merge_meta"), merge_meta)
        ws.write(self._section("merge_indptr"), merge_indptr)
        if merge_slots.size:
            ws.write(self._section("merge_slots"), merge_slots)

    def _read_plan(self) -> SchedulePlan:
        """Reconstruct the plan from workspace contents (the kernel's view)."""
        ws = self.workspace
        counts = ws.read(self._section("counts"), np.int64, 8)
        n_items, n_merges, n_slots, n_partial, q_tile_size, kv_chunk = (
            int(counts[0]), int(counts[1]), int(counts[2]), int(counts[3]),
            int(counts[4]), int(counts[5]),
        )
        item_arr = ws.read(
            self._section("work_items"), np.int64, n_items * _ITEM_FIELDS
        ).reshape(n_items, _ITEM_FIELDS)
        cta_indptr = ws.read(self._section("cta_indptr"), np.int64, self.num_ctas + 1)
        queues: List[List[WorkItem]] = []
        for c in range(self.num_ctas):
            queues.append(
                [WorkItem(*row) for row in item_arr[cta_indptr[c] : cta_indptr[c + 1]]]
            )
        merge_meta = ws.read(
            self._section("merge_meta"), np.int64, n_merges * _MERGE_FIELDS
        ).reshape(n_merges, _MERGE_FIELDS)
        merge_indptr = ws.read(self._section("merge_indptr"), np.int64, n_merges + 1)
        merge_slots = ws.read(self._section("merge_slots"), np.int64, n_slots)
        merges = [
            MergeEntry(
                int(merge_meta[i, 0]), int(merge_meta[i, 1]), int(merge_meta[i, 2]),
                int(merge_meta[i, 3]), int(merge_meta[i, 4]),
                tuple(int(s) for s in merge_slots[merge_indptr[i] : merge_indptr[i + 1]]),
            )
            for i in range(n_merges)
        ]
        return SchedulePlan(
            cta_queues=queues,
            merges=merges,
            num_partial_slots=n_partial,
            q_tile_size=q_tile_size,
            kv_chunk_size=kv_chunk,
        )

    # -- run -------------------------------------------------------------------

    def _simulate_fast(self) -> SimReport:
        """Cost-only execution: vectorized over the serialized plan arrays.

        Equivalent to the per-item path (pinned by ``tests/test_simulate``)
        but ~100× faster — used by benchmarks and the serving engine.
        """
        from repro.core.simulate import (
            item_cost_arrays,
            merge_cost_arrays,
            simulate_queues,
        )

        ws = self.workspace
        counts = ws.read(self._section("counts"), np.int64, 8)
        n_items, n_merges = int(counts[0]), int(counts[1])
        item_arr = ws.read(
            self._section("work_items"), np.int64, n_items * _ITEM_FIELDS
        ).reshape(n_items, _ITEM_FIELDS)
        cta_indptr = ws.read(self._section("cta_indptr"), np.int64, self.num_ctas + 1)
        cta_of_item = np.repeat(np.arange(self.num_ctas), np.diff(cta_indptr))
        g_eff = self.heads.group_size if self.fuse_head_groups else 1
        compute_share = min(1.0, self.gpu.num_sms / self.num_ctas)
        costs = item_cost_arrays(
            item_arr, self._mapping, self.heads, self.kv_tile, self.kv_dtype,
            int(counts[4]), self.fuse_head_groups, self.traits.uses_tensor_cores,
            self.sparse_gather, self.executor.cost_model, compute_share,
            self.compute_penalty,
        )
        report = simulate_queues(self.executor, costs, cta_of_item, self.num_ctas)
        if n_merges:
            merge_meta = ws.read(
                self._section("merge_meta"), np.int64, n_merges * _MERGE_FIELDS
            ).reshape(n_merges, _MERGE_FIELDS)
            merge_indptr = ws.read(self._section("merge_indptr"), np.int64, n_merges + 1)
            mcosts = merge_cost_arrays(
                np.diff(merge_indptr), merge_meta[:, 3] * g_eff,
                self.heads.head_dim, self.executor.cost_model, compute_share,
            )
            merge_cta = np.arange(n_merges) % self.num_ctas
            report = report.combine(
                simulate_queues(self.executor, mcosts, merge_cta, self.num_ctas)
            )
        return report

    def _signature(self) -> Tuple:
        """Launch-time arguments CUDAGraph freezes."""
        secs = tuple(
            self.workspace.section(self._section(s)).address
            for s in ("counts", "work_items", "cta_indptr", "partial_o", "partial_lse")
        )
        return (self.num_ctas, self.traits.q_tile, self.traits.kv_tile, secs)

    def run(
        self,
        q: Optional[np.ndarray],
        k_pool: Optional[np.ndarray] = None,
        v_pool: Optional[np.ndarray] = None,
        out: Optional[np.ndarray] = None,
        lse: Optional[np.ndarray] = None,
        compute: bool = True,
        apply_output_transform: bool = True,
    ) -> Tuple[np.ndarray, np.ndarray, SimReport]:
        """Execute the attention + contraction kernels under the cached plan.

        Returns ``(out, lse, report)``.  ``out``/``lse`` rows not covered by
        this wrapper's mapping are left untouched (``lse`` stays ``-inf``),
        so composable formats can ``⊕``-merge several wrappers' results.

        ``q`` may be ``None`` for cost-only runs (``compute=False``) — the
        simulated-GPU report is produced without touching any tensor data.
        """
        if self._mapping is None:
            raise RuntimeError("run() before plan()")
        mapping = self._mapping
        if q is None:
            if compute:
                raise ValueError("compute=True requires q/k_pool/v_pool tensors")
            total_q = (
                int((mapping.q_row_starts + mapping.qo_lens).max())
                if mapping.num_groups
                else 0
            )
        else:
            total_q = q.shape[0]
        if compute and out is None:
            out = np.zeros((total_q, self.heads.num_qo_heads, self.heads.head_dim))
        if compute and lse is None:
            lse = np.full((total_q, self.heads.num_qo_heads), -np.inf)

        d = self.heads.head_dim
        partial_o = self.workspace.view(self._section("partial_o"), np.float32)[
            : self._max_slots * self._max_rows_eff * d
        ].reshape(self._max_slots, self._max_rows_eff, d)
        partial_lse = self.workspace.view(self._section("partial_lse"), np.float32)[
            : self._max_slots * self._max_rows_eff
        ].reshape(self._max_slots, self._max_rows_eff)

        def launch() -> SimReport:
            if not compute:
                report = self._simulate_fast()
            else:
                plan = self._read_plan()
                cost_queues, merge_costs = run_mapping(
                    q, k_pool, v_pool, mapping, plan, self.kernel, self.heads,
                    self._params, self._sm_scale, self.kv_tile, out, lse,
                    partial_o, partial_lse, kv_dtype=self.kv_dtype,
                    fuse_head_groups=self.fuse_head_groups,
                    sparse_gather=self.sparse_gather,
                    uses_tensor_cores=self.traits.uses_tensor_cores,
                    compute=True, compute_penalty=self.compute_penalty,
                )
                report = self.executor.run_persistent(cost_queues)
                if merge_costs:
                    merge_queues = distribute_merges(plan.merges, self.num_ctas)
                    cost_by_cta = [[merge_costs[i] for i in q_] for q_ in merge_queues]
                    report = report.combine(self.executor.run_persistent(cost_by_cta))
            self.last_report = report
            return report

        launch.current_signature = self._signature  # type: ignore[attr-defined]
        report = CudaGraph.add_launch(launch, self._signature(), name=self.name)

        if compute:
            inj = self.executor.fault_injector
            if inj is not None and total_q and inj.fire("numeric"):
                out[inj.choose("numeric", total_q)] = np.nan
            if self.output_guard is not None:
                self.output_guard.check(out, self.name)

        if compute and apply_output_transform and self.kernel.output_transform is not None:
            covered = np.zeros(total_q, dtype=bool)
            for g in range(mapping.num_groups):
                s = int(mapping.q_row_starts[g])
                covered[s : s + int(mapping.qo_lens[g])] = True
            rows = np.nonzero(covered)[0]
            for h in range(self.heads.num_qo_heads):
                out[rows, h, :] = self.kernel.output_transform(
                    out[rows, h, :], rows, h, self._params
                )
        return out, lse, report


class ComposableAttentionWrapper:
    """A stack of per-format wrappers merged with ``⊕`` (§3.1.2).

    One :class:`BatchAttentionWrapper` per format, each with its own block
    sizes; ``run`` merges the per-format partial states and applies the
    variant's output transform once.
    """

    def __init__(
        self,
        variant: AttentionVariant,
        heads: HeadConfig,
        workspace: WorkspaceBuffer,
        gpu: GPUSpec = A100_40G,
        **wrapper_kwargs,
    ):
        self.variant = variant
        self.heads = heads
        self.workspace = workspace
        self.gpu = gpu
        self._kwargs = wrapper_kwargs
        self.wrappers: List[BatchAttentionWrapper] = []
        self._format: Optional[ComposableFormat] = None
        self.last_report: Optional[SimReport] = None
        #: Shared plan memo, propagated to each per-format wrapper.
        self.plan_cache = None

    def plan(
        self,
        formats: Union[ComposableFormat, AttentionMapping],
        params: Optional[dict] = None,
        sm_scale: Optional[float] = None,
    ) -> None:
        if isinstance(formats, AttentionMapping):
            formats = ComposableFormat.single(formats)
        if self.wrappers and len(self.wrappers) != len(formats):
            raise ValueError(
                f"wrapper stack was built for {len(self.wrappers)} formats, "
                f"got {len(formats)}; composable configurations need separate "
                f"wrappers/CUDAGraphs (§3.4)"
            )
        if not self.wrappers:
            for i, m in enumerate(formats):
                avg = float(np.mean(m.qo_lens)) if m.num_groups else 1.0
                if m.block_row_size:
                    avg = max(avg, float(m.block_row_size))
                # Unique names: several composable stacks may share one
                # workspace (e.g. decode and prefill configurations), and
                # section names must not collide.
                self.wrappers.append(
                    BatchAttentionWrapper(
                        self.variant, self.heads, self.workspace, self.gpu,
                        avg_qo_len=avg,
                        name=f"fmt{i}_{m.label}_{next(_wrapper_counter)}",
                        **self._kwargs,
                    )
                )
                self.wrappers[-1].plan_cache = self.plan_cache
        for w, m in zip(self.wrappers, formats):
            w.plan(m, params=params, sm_scale=sm_scale)
        self._format = formats

    def run(
        self,
        q: Optional[np.ndarray],
        k_pool: Optional[np.ndarray] = None,
        v_pool: Optional[np.ndarray] = None,
        compute: bool = True,
    ) -> Tuple[Optional[np.ndarray], SimReport]:
        """Run every format and contract their states into the final output."""
        if self._format is None:
            raise RuntimeError("run() before plan()")
        if q is None:
            if compute:
                raise ValueError("compute=True requires q/k_pool/v_pool tensors")
            total_q = self._format.total_qo
        else:
            total_q = q.shape[0]
        h, d = self.heads.num_qo_heads, self.heads.head_dim
        acc_o = np.zeros((total_q, h, d)) if compute else None
        acc_lse = np.full((total_q, h), -np.inf) if compute else None
        report: Optional[SimReport] = None
        merge_traffic = 0.0
        for i, w in enumerate(self.wrappers):
            o_f = np.zeros((total_q, h, d)) if compute else None
            lse_f = np.full((total_q, h), -np.inf) if compute else None
            _, _, rep = w.run(
                q, k_pool, v_pool, out=o_f, lse=lse_f, compute=compute,
                apply_output_transform=False,
            )
            report = rep if report is None else report.combine(rep)
            if compute:
                if self.variant.use_softmax:
                    acc_o, acc_lse = merge_states(acc_o, acc_lse, o_f, lse_f)
                else:
                    acc_o = acc_o + o_f
            if i > 0:
                # Cross-format contraction traffic: read two states, write one.
                covered = int(np.sum(w._mapping.qo_lens)) if w._mapping else 0
                merge_traffic += 3.0 * covered * h * (d + 1) * PARTIAL_ITEMSIZE
        if merge_traffic and report is not None:
            merge_cost = TileCost(
                flops=0.0, padded_flops=0.0,
                bytes_read=merge_traffic * 2 / 3, bytes_written=merge_traffic / 3,
                uses_tensor_cores=False,
            )
            exe = self.wrappers[0].executor
            n = self.wrappers[0].num_ctas
            per = TileCost(
                flops=0.0, padded_flops=0.0,
                bytes_read=merge_cost.bytes_read / n,
                bytes_written=merge_cost.bytes_written / n,
                uses_tensor_cores=False,
            )
            report = report.combine(exe.run_persistent([[per] for _ in range(n)]))
        out = acc_o
        if compute:
            out_fn = self.wrappers[0].kernel.output_transform
            if out_fn is not None:
                rows = np.arange(total_q)
                for hh in range(h):
                    out[:, hh, :] = out_fn(out[:, hh, :], rows, hh, self.wrappers[0]._params)
        self.last_report = report
        return out, report
