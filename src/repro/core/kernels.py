"""Plan execution: numeric kernels plus cost accounting.

``run_mapping`` drains a :class:`~repro.core.scheduler.SchedulePlan` for one
:class:`~repro.sparse.AttentionMapping`: every work item gathers its KV
chunk from the pool (the scattered-global-to-contiguous-shared move of
§3.2.1), invokes the JIT kernel to produce a partial attention state, and
writes either straight to the final output (writethrough) or to a workspace
partial slot.  Alongside the numerics it builds per-CTA
:class:`~repro.gpu.cost.TileCost` queues for the simulated GPU; the two are
kept in lockstep so a benchmark can skip the numerics (``compute=False``)
and still obtain exact traffic/FLOP accounting at paper-scale problem
sizes.

``reference_attention`` is the O(n²) dense safe-softmax oracle used by the
test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.composition import contract_entry, contraction_cost
from repro.core.jit import CompiledKernel
from repro.core.scheduler import SchedulePlan, WorkItem
from repro.gpu.cost import TileCost
from repro.sparse.bsr import ceil_div
from repro.sparse.layout import AttentionMapping
from repro.utils.dtypes import StorageDType, round_to_storage

#: Queries/outputs are staged in fp16 (paper §4: "f16 precision for storage").
Q_ITEMSIZE = 2
#: Partial states live in fp32 in the workspace (Appendix D.3: D+1 floats).
PARTIAL_ITEMSIZE = 4


@dataclass(frozen=True)
class HeadConfig:
    """Attention head geometry."""

    num_qo_heads: int
    num_kv_heads: int
    head_dim: int

    def __post_init__(self) -> None:
        if self.num_qo_heads % self.num_kv_heads != 0:
            raise ValueError(
                f"num_qo_heads ({self.num_qo_heads}) must be a multiple of "
                f"num_kv_heads ({self.num_kv_heads})"
            )

    @property
    def group_size(self) -> int:
        """GQA group size g = H_qo / H_kv (§2.1)."""
        return self.num_qo_heads // self.num_kv_heads


def reference_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    causal: bool = False,
    sm_scale: Optional[float] = None,
    q_pos: Optional[np.ndarray] = None,
    kv_pos: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Dense safe-softmax attention oracle.

    ``q``: ``(n_q, H_qo, D)``; ``k``/``v``: ``(n_kv, H_kv, D)`` with
    ``H_qo`` a multiple of ``H_kv`` (GQA).  Positions default to the
    decode/prefill convention (queries are the trailing positions).
    """
    q = np.asarray(q, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    n_q, h_qo, d = q.shape
    n_kv, h_kv, _ = k.shape
    g = h_qo // h_kv
    if sm_scale is None:
        sm_scale = 1.0 / np.sqrt(d)
    if q_pos is None:
        q_pos = np.arange(n_kv - n_q, n_kv)
    if kv_pos is None:
        kv_pos = np.arange(n_kv)
    out = np.zeros_like(q)
    for h in range(h_qo):
        kh = h // g
        s = (q[:, h] @ k[:, kh].T) * sm_scale
        if causal:
            s = np.where(q_pos[:, None] >= kv_pos[None, :], s, -np.inf)
        m = np.max(s, axis=1, keepdims=True)
        m = np.where(np.isneginf(m), 0.0, m)
        p = np.exp(s - m)
        denom = p.sum(axis=1, keepdims=True)
        denom = np.where(denom == 0.0, 1.0, denom)
        out[:, h] = (p / denom) @ v[:, kh]
    return out


def sampled_isfinite(out: np.ndarray, sample_stride: int = 1) -> bool:
    """Cheap output-guard primitive: ``isfinite`` over every
    ``sample_stride``-th output row.

    The detection hook of :class:`repro.faults.OutputGuard` — kept here so
    kernel-level callers (wrappers, backends) share one implementation and
    one cost model: O(rows/stride) with no temporaries beyond the strided
    view.
    """
    sample = out[::sample_stride] if sample_stride > 1 else out
    return bool(np.isfinite(sample).all())


def kv_reuse_factor(item: WorkItem, mapping: AttentionMapping, q_tile_size: int) -> int:
    """Number of query tiles in the item's group that read its KV chunk.

    Causal groups: tiles whose last query position reaches the chunk's
    first KV position.  Non-causal groups: every tile.
    """
    lq = int(mapping.qo_lens[item.group])
    n_tiles = ceil_div(lq, q_tile_size) if lq else 1
    if not mapping.causal:
        return max(n_tiles, 1)
    first_row = (
        int(mapping.kv_pos_offset[item.group]) + item.kv_start
        - int(mapping.q_pos_offset[item.group])
    )
    first_row = min(max(first_row, 0), max(lq - 1, 0))
    return max(n_tiles - first_row // q_tile_size, 1)


def work_item_cost(
    item: WorkItem,
    mapping: AttentionMapping,
    heads: HeadConfig,
    kv_tile: int,
    kv_dtype: StorageDType,
    q_tile_size: int,
    fuse_head_groups: bool,
    uses_tensor_cores: bool,
    sparse_gather: bool,
    compute_penalty: float = 1.0,
) -> TileCost:
    """Roofline footprint of one work item.

    Models causal skipping (KV tiles entirely above the diagonal are never
    loaded or computed), tile padding waste, GQA head-group fusion (KV
    loaded once per KV head rather than once per query head), and the
    transaction efficiency of sparse gathers.
    """
    g_eff = heads.group_size if fuse_head_groups else 1
    d = heads.head_dim
    chunk = item.kv_len
    q_pos0 = int(mapping.q_pos_offset[item.group]) + item.q_start
    kv_pos0 = int(mapping.kv_pos_offset[item.group]) + item.kv_start

    if mapping.causal and chunk > 0:
        counts = np.clip(
            (q_pos0 + np.arange(item.q_rows)) - kv_pos0 + 1, 0, chunk
        )
        useful_cols = int(counts.sum())
        max_count = int(counts.max())
        processed = min(chunk, ceil_div(max_count, kv_tile) * kv_tile) if max_count else 0
    else:
        useful_cols = item.q_rows * chunk
        processed = chunk

    flops = 4.0 * d * useful_cols * g_eff
    padded_rows = q_tile_size * g_eff
    padded_flops = 4.0 * d * padded_rows * processed * compute_penalty

    # A KV chunk is re-read by every later query tile of its group; the
    # re-reads hit L2 (the working set is a few MB), so only 1/reuse of the
    # logical KV traffic goes to HBM.  Decode (one tile per group) has
    # reuse 1.  This is what makes prefill compute-bound in practice.
    reuse = kv_reuse_factor(item, mapping, q_tile_size)
    kv_bytes = processed * d * 2 * kv_dtype.itemsize / reuse
    q_bytes = item.q_rows * g_eff * d * Q_ITEMSIZE
    if item.partial_slot >= 0:
        out_bytes = item.q_rows * g_eff * (d + 1) * PARTIAL_ITEMSIZE
    else:
        out_bytes = item.q_rows * g_eff * d * Q_ITEMSIZE

    if sparse_gather and processed > 0:
        bc = mapping.kv.block_size
        run_bytes = float(min(bc, processed) * d * kv_dtype.itemsize)
        segments = 2 * ceil_div(processed, bc)
    else:
        run_bytes = 0.0
        segments = 0

    return TileCost(
        flops=flops,
        padded_flops=padded_flops,
        bytes_read=float(kv_bytes + q_bytes),
        bytes_written=float(out_bytes),
        contiguous_run_bytes=run_bytes,
        n_gather_segments=segments,
        uses_tensor_cores=uses_tensor_cores,
    )


def run_mapping(
    q: np.ndarray,
    k_pool: np.ndarray,
    v_pool: np.ndarray,
    mapping: AttentionMapping,
    plan: SchedulePlan,
    kernel: CompiledKernel,
    heads: HeadConfig,
    params,
    sm_scale: float,
    kv_tile: int,
    out: np.ndarray,
    lse: np.ndarray,
    partial_o: np.ndarray,
    partial_lse: np.ndarray,
    kv_dtype: StorageDType = StorageDType.FP16,
    fuse_head_groups: bool = True,
    sparse_gather: bool = True,
    uses_tensor_cores: bool = True,
    compute: bool = True,
    compute_penalty: float = 1.0,
) -> Tuple[List[List[TileCost]], List[TileCost]]:
    """Execute one mapping's plan: numerics into ``out``/``lse``, costs out.

    ``out`` (``(total_q, H_qo, D)``) and ``lse`` (``(total_q, H_qo)``) are
    written only at rows/heads this mapping covers.  Split tiles go through
    ``partial_o``/``partial_lse`` (``(slots, max_rows, D)`` / ``(slots,
    max_rows)``) and are contracted per the plan's merge entries.

    Returns ``(cta_cost_queues, merge_costs)`` for the simulated GPU.
    """
    g = heads.group_size
    d = heads.head_dim
    g_eff = g if fuse_head_groups else 1
    cost_queues: List[List[TileCost]] = []

    for queue in plan.cta_queues:
        costs: List[TileCost] = []
        for item in queue:
            costs.append(
                work_item_cost(
                    item,
                    mapping,
                    heads,
                    kv_tile,
                    kv_dtype,
                    plan.q_tile_size,
                    fuse_head_groups,
                    uses_tensor_cores,
                    sparse_gather,
                    compute_penalty,
                )
            )
            if compute:
                _execute_item(
                    item, q, k_pool, v_pool, mapping, kernel, heads, params,
                    sm_scale, kv_tile, out, lse, partial_o, partial_lse,
                    kv_dtype, fuse_head_groups,
                )
        cost_queues.append(costs)

    merge_costs: List[TileCost] = []
    for entry in plan.merges:
        rows = entry.q_rows * g_eff
        merge_costs.append(contraction_cost(entry, rows, d, PARTIAL_ITEMSIZE))
        if compute:
            _execute_merge(
                entry, mapping, heads, out, lse, partial_o, partial_lse,
                fuse_head_groups, kernel.variant.use_softmax,
            )
    return cost_queues, merge_costs


def _item_rows(
    item: WorkItem,
    mapping: AttentionMapping,
    heads: HeadConfig,
    fuse_head_groups: bool,
) -> Tuple[int, int, np.ndarray, np.ndarray, int]:
    """Resolve a work item's absolute query rows, head set and positions.

    Returns ``(abs_row_start, n_heads, q_pos, q_head_ids, kv_head)`` where
    the item covers query heads ``q_head_ids`` (fused GQA group or a single
    head) of rows ``[abs_row_start, abs_row_start + q_rows)``.
    """
    g = heads.group_size
    abs_start = int(mapping.q_row_starts[item.group]) + item.q_start
    q_pos = int(mapping.q_pos_offset[item.group]) + item.q_start + np.arange(item.q_rows)
    if fuse_head_groups:
        kv_head = item.kv_head
        head_ids = np.arange(kv_head * g, (kv_head + 1) * g)
    else:
        qh = item.kv_head  # scheduling dimension enumerates query heads
        kv_head = qh // g
        head_ids = np.asarray([qh])
    return abs_start, len(head_ids), q_pos, head_ids, kv_head


def _execute_item(
    item, q, k_pool, v_pool, mapping, kernel, heads, params, sm_scale,
    kv_tile, out, lse, partial_o, partial_lse, kv_dtype, fuse_head_groups,
) -> None:
    abs_start, n_heads, q_pos, head_ids, kv_head = _item_rows(
        item, mapping, heads, fuse_head_groups
    )
    d = heads.head_dim
    rows_eff = item.q_rows * n_heads

    # Query tile with GQA head-group fusion: (query, head) row-major.
    q_tile = q[abs_start : abs_start + item.q_rows][:, head_ids, :].reshape(rows_eff, d)
    q_pos_rows = np.repeat(q_pos, n_heads)
    q_head_rows = np.tile(head_ids, item.q_rows)

    # Gather the KV chunk (scattered global → contiguous "shared" memory).
    slots = mapping.kv.slot_indices(item.group, item.kv_start, item.kv_stop)
    k_chunk = round_to_storage(k_pool[slots, kv_head, :], kv_dtype)
    v_chunk = round_to_storage(v_pool[slots, kv_head, :], kv_dtype)
    kv_pos = int(mapping.kv_pos_offset[item.group]) + np.arange(item.kv_start, item.kv_stop)

    o_tile, lse_tile = kernel.fn(
        q_tile, k_chunk, v_chunk, q_pos_rows, kv_pos, q_head_rows, kv_head,
        params, sm_scale, mapping.causal, kv_tile,
    )

    if item.partial_slot >= 0:
        partial_o[item.partial_slot, :rows_eff, :] = o_tile
        partial_lse[item.partial_slot, :rows_eff] = lse_tile
    else:
        _scatter_output(out, lse, o_tile, lse_tile, abs_start, item.q_rows, head_ids)


def _execute_merge(
    entry, mapping, heads, out, lse, partial_o, partial_lse,
    fuse_head_groups, use_softmax,
) -> None:
    g = heads.group_size
    d = heads.head_dim
    abs_start = int(mapping.q_row_starts[entry.group]) + entry.q_start
    if fuse_head_groups:
        head_ids = np.arange(entry.kv_head * g, (entry.kv_head + 1) * g)
    else:
        head_ids = np.asarray([entry.kv_head])
    rows_eff = entry.q_rows * len(head_ids)
    o_tile, lse_tile = contract_entry(
        entry,
        partial_o[:, :rows_eff, :],
        partial_lse[:, :rows_eff],
        use_softmax,
    )
    _scatter_output(out, lse, o_tile, lse_tile, abs_start, entry.q_rows, head_ids)


def _scatter_output(
    out: np.ndarray,
    lse: np.ndarray,
    o_tile: np.ndarray,
    lse_tile: np.ndarray,
    abs_start: int,
    q_rows: int,
    head_ids: np.ndarray,
) -> None:
    """Unfuse a (query, head)-row-major tile back into packed layout."""
    d = out.shape[-1]
    n_heads = len(head_ids)
    o = o_tile.reshape(q_rows, n_heads, d)
    s = lse_tile.reshape(q_rows, n_heads)
    idx = slice(abs_start, abs_start + q_rows)
    out[idx, head_ids, :] = o
    lse[idx, head_ids] = s
