"""The attention kernel template the JIT compiler specializes.

This is the Python analog of FlashInfer's CUDA/CUTLASS ``KernelTemplate``
(paper Figure 5): a source-code *string* with placeholders for the variant
functors, kernel name and traits.  The JIT compiler renders the variant's
functor expressions into the template (hooks for undeclared functors are
removed entirely — specialization, not branching), compiles the result with
``compile()``/``exec`` and caches it.

The generated function processes one **work item** — a query tile against a
KV chunk, for one KV head — using the FlashAttention-2 loop structure:
an online-softmax sweep over KV tiles with running ``(m, d, acc)``
renormalization, returning the partial attention state ``(O, LSE)`` for the
chunk (§2.2: the canonical kernel output).  For ``use_softmax=False``
variants the sweep degenerates to masked weighted accumulation and states
compose by addition.
"""

from __future__ import annotations

from typing import Optional

MODULE_TEMPLATE = '''\
"""JIT-generated attention kernel for variant {variant_name!r}."""
{helpers}

def {kernel_name}(q, k, v, q_pos, kv_pos, q_head, kv_head, params,
                  sm_scale, causal, kv_tile):
    """Attention work-item kernel specialized for variant {variant_name!r}.

    Processes one query tile against one gathered KV chunk for one KV head
    and returns the partial attention state ``(o, lse)``.

    q : (rows, head_dim) float — query tile (may fuse GQA head groups)
    k, v : (kv_len, head_dim) float — gathered KV chunk (contiguous)
    q_pos / kv_pos : int64 absolute positions; q_head : (rows,) int64;
    kv_head : int; params : bound variant parameters; sm_scale : float;
    causal : bool; kv_tile : int — inner tile size of the online sweep.
    """
    rows, head_dim = q.shape
    kv_len = k.shape[0]
    q = np.asarray(q, dtype=np.float64)
{apply_query_transform}
    m = np.full(rows, -np.inf)
    d = np.zeros(rows)
    acc = np.zeros((rows, head_dim))
    q_pos_col = q_pos[:, None]
    q_head_col = q_head[:, None]
    for t0 in range(0, kv_len, kv_tile):
        t1 = min(t0 + kv_tile, kv_len)
        kt = np.asarray(k[t0:t1], dtype=np.float64)
        vt = np.asarray(v[t0:t1], dtype=np.float64)
        kv_pos_t = kv_pos[t0:t1]
{apply_key_transform}
{apply_value_transform}
        logits = (q @ kt.T) * sm_scale
        kv_pos_row = kv_pos_t[None, :]
{apply_logits_transform}
        keep = np.ones((rows, t1 - t0), dtype=bool)
        if causal:
            keep &= q_pos_col >= kv_pos_row
{apply_logits_mask}
{accumulate}
{finalize}
'''

SOFTMAX_ACCUMULATE = '''\
        logits = np.where(keep, logits, -np.inf)
        m_new = np.maximum(m, logits.max(axis=1) if logits.size else -np.inf)
        m_safe = np.where(np.isneginf(m_new), 0.0, m_new)
        p = np.exp(logits - m_safe[:, None])
        rescale = np.exp(np.where(np.isneginf(m), -np.inf, m - m_safe))
        d = d * rescale + p.sum(axis=1)
        acc = acc * rescale[:, None] + p @ vt
        m = m_new
'''

SOFTMAX_FINALIZE = '''\
    denom = np.where(d == 0.0, 1.0, d)
    o = acc / denom[:, None]
    with np.errstate(divide="ignore"):
        lse = np.where(d == 0.0, -np.inf, m + np.log(denom))
    return o, lse
'''

SUM_ACCUMULATE = '''\
        weights = np.where(keep, logits, 0.0)
        acc = acc + weights @ vt
'''

SUM_FINALIZE = '''\
    return acc, np.zeros(rows)
'''

_HELPER_TEMPLATES = {
    "query_transform": (
        "def _query_transform(q, q_pos, head, params):\n    return ({expr})\n",
        "    q = np.asarray(_query_transform(q, q_pos, q_head, params), dtype=np.float64)",
    ),
    "key_transform": (
        "def _key_transform(k, kv_pos, head, params):\n    return ({expr})\n",
        "        kt = np.asarray(_key_transform(kt, kv_pos_t, kv_head, params), dtype=np.float64)",
    ),
    "value_transform": (
        "def _value_transform(v, kv_pos, head, params):\n    return ({expr})\n",
        "        vt = np.asarray(_value_transform(vt, kv_pos_t, kv_head, params), dtype=np.float64)",
    ),
    "logits_transform": (
        "def _logits_transform(logits, q_pos, kv_pos, q_head, kv_head, params):\n"
        "    return ({expr})\n",
        "        logits = _logits_transform(logits, q_pos_col, kv_pos_row, "
        "q_head_col, kv_head, params)",
    ),
    "logits_mask": (
        "def _logits_mask(q_pos, kv_pos, q_head, kv_head, params):\n    return ({expr})\n",
        "        keep &= _logits_mask(q_pos_col, kv_pos_row, q_head_col, kv_head, params)",
    ),
}


def render_kernel_source(
    kernel_name: str,
    variant_name: str,
    query_transform: Optional[str],
    key_transform: Optional[str],
    value_transform: Optional[str],
    logits_transform: Optional[str],
    logits_mask: Optional[str],
    use_softmax: bool,
) -> str:
    """Render a specialized kernel module source from functor expressions."""
    exprs = {
        "query_transform": query_transform,
        "key_transform": key_transform,
        "value_transform": value_transform,
        "logits_transform": logits_transform,
        "logits_mask": logits_mask,
    }
    helpers = []
    applies = {}
    for functor, expr in exprs.items():
        helper_tpl, apply_line = _HELPER_TEMPLATES[functor]
        if expr is None:
            applies[functor] = ""
        else:
            helpers.append(helper_tpl.format(expr=expr))
            applies[functor] = apply_line
    return MODULE_TEMPLATE.format(
        kernel_name=kernel_name,
        variant_name=variant_name,
        helpers="\n".join(helpers),
        apply_query_transform=applies["query_transform"],
        apply_key_transform=applies["key_transform"],
        apply_value_transform=applies["value_transform"],
        apply_logits_transform=applies["logits_transform"],
        apply_logits_mask=applies["logits_mask"],
        accumulate=SOFTMAX_ACCUMULATE if use_softmax else SUM_ACCUMULATE,
        finalize=SOFTMAX_FINALIZE if use_softmax else SUM_FINALIZE,
    )
