"""FlashAttention-library baseline (the §4.2 comparison point).

Models the open-source FlashAttention2/3 kernels as used for LLM serving:

* **fixed tile sizes** — the library ships one prefill tile (128 query
  rows) and a fixed decode tile, "optimal for prefill on A100 but
  inefficient for shorter-query-length decoding" (§3.2.2);
* **grid launches, one block per (request, tile, head)** — no persistent
  work queue and no cross-request load balancing, so skewed batches leave
  SMs idle (§4.2);
* **uniform flash-decoding splits (FA3)** — each request's KV is split into
  the same number of chunks regardless of its length, chosen once per
  batch to fill the device, rather than FlashInfer's per-request balanced
  chunking.

Numerics are exact (the baseline shares the reference FA2 sweep); only the
scheduling/cost discipline differs, which is the variable under test.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.jit import KernelTraits, get_kernel
from repro.core.kernels import HeadConfig, run_mapping
from repro.core.scheduler import SchedulePlan, WorkItem
from repro.core.variant import VANILLA, AttentionVariant
from repro.gpu.cost import KernelCostModel, TileCost
from repro.gpu.executor import PersistentKernelExecutor, SimReport
from repro.gpu.spec import A100_40G, GPUSpec
from repro.sparse.bsr import ceil_div
from repro.sparse.layout import AttentionMapping
from repro.utils.dtypes import StorageDType

#: The library's compiled tile sizes: (query tile, kv tile).
FA2_PREFILL_TILE = (128, 64)
FA3_PREFILL_TILE = (128, 128)
FA2_DECODE_TILE = (128, 64)  # decode reuses the prefill kernel (suboptimal)
FA3_DECODE_TILE = (64, 128)


class FlashAttentionBaseline:
    """Grid-launched FA2/FA3 with fixed tiles and uniform splits."""

    def __init__(
        self,
        heads: HeadConfig,
        gpu: GPUSpec = A100_40G,
        version: str = "fa2",
        kv_dtype: StorageDType = StorageDType.FP16,
        variant: AttentionVariant = VANILLA,
        cost_model: Optional[KernelCostModel] = None,
    ):
        if version not in ("fa2", "fa3"):
            raise ValueError(f"unknown FlashAttention version {version!r}")
        self.heads = heads
        self.gpu = gpu
        self.version = version
        self.kv_dtype = kv_dtype
        self.variant = variant
        self.executor = PersistentKernelExecutor(gpu, cost_model)
        self.last_report: Optional[SimReport] = None

    def _tiles(self, decode: bool) -> Tuple[int, int]:
        if self.version == "fa2":
            return FA2_DECODE_TILE if decode else FA2_PREFILL_TILE
        return FA3_DECODE_TILE if decode else FA3_PREFILL_TILE

    def _build_items(
        self, mapping: AttentionMapping, decode: bool
    ) -> Tuple[List[WorkItem], int, int, int]:
        """Enumerate grid blocks: (request, q tile, head, [split])."""
        q_tile, kv_tile = self._tiles(decode)
        g = self.heads.group_size
        sched_q_tile = max(q_tile // g, 1)
        kv_lens = mapping.kv.kv_lens
        qo_lens = mapping.qo_lens
        n_req = mapping.num_groups
        heads_dim = self.heads.num_kv_heads

        if decode and self.version == "fa3":
            # Flash-decoding: one split count for the whole batch, chosen to
            # fill the device; every request gets the same number of chunks.
            base_blocks = n_req * heads_dim
            num_splits = max(1, min(128, ceil_div(self.gpu.num_sms, max(base_blocks, 1))))
        else:
            num_splits = 1

        items: List[WorkItem] = []
        slot = 0
        for r in range(n_req):
            lq, lkv = int(qo_lens[r]), int(kv_lens[r])
            if lq == 0:
                continue
            for t in range(ceil_div(lq, sched_q_tile)):
                q_start = t * sched_q_tile
                q_rows = min(sched_q_tile, lq - q_start)
                for h in range(heads_dim):
                    if num_splits == 1 or lkv == 0:
                        items.append(WorkItem(0, r, t, q_start, q_rows, 0, lkv, h, -1))
                    else:
                        chunk = ceil_div(lkv, num_splits)
                        for c in range(num_splits):
                            k0 = c * chunk
                            k1 = min(k0 + chunk, lkv)
                            if k0 >= k1:
                                continue
                            items.append(
                                WorkItem(0, r, t, q_start, q_rows, k0, k1, h, slot)
                            )
                            slot += 1
        return items, sched_q_tile, kv_tile, num_splits

    def run(
        self,
        mapping: AttentionMapping,
        q: Optional[np.ndarray] = None,
        k_pool: Optional[np.ndarray] = None,
        v_pool: Optional[np.ndarray] = None,
        decode: bool = False,
        compute: bool = False,
        sparse_gather: bool = False,
    ) -> Tuple[Optional[np.ndarray], SimReport]:
        """Launch the FA kernel grid over a batch mapping.

        ``sparse_gather=False`` models the library's contiguous
        (ragged-dense) KV path; FA3 dense additionally uses TMA (no gather
        cost by construction here).
        """
        items, sched_q_tile, kv_tile, num_splits = self._build_items(mapping, decode)
        from repro.core.simulate import item_cost_arrays, simulate_grid

        item_arr = np.asarray(
            [
                (w.mapping_idx, w.group, w.q_tile, w.q_start, w.q_rows,
                 w.kv_start, w.kv_stop, w.kv_head, w.partial_slot)
                for w in items
            ],
            dtype=np.int64,
        ).reshape(len(items), 9)
        costs = item_cost_arrays(
            item_arr, mapping, self.heads, kv_tile, self.kv_dtype, sched_q_tile,
            fuse_head_groups=True,
            uses_tensor_cores=sched_q_tile * self.heads.group_size >= 16,
            sparse_gather=sparse_gather,
            cost_model=self.executor.cost_model,
            compute_share=1.0,
        )
        report = simulate_grid(self.executor, costs)
        if num_splits > 1:
            # Split-K reduction pass: read all partial states, write finals.
            d = self.heads.head_dim
            g = self.heads.group_size
            rows = sched_q_tile * g
            n_partials = sum(1 for w in items if w.partial_slot >= 0)
            red = TileCost(
                flops=4.0 * rows * d,
                padded_flops=4.0 * rows * d,
                bytes_read=float(rows * (d + 1) * 4),
                bytes_written=float(rows * d * 4) / max(num_splits, 1),
                uses_tensor_cores=False,
            )
            report = report.combine(self.executor.run_grid([red] * n_partials))

        out = None
        if compute:
            if q is None or k_pool is None or v_pool is None:
                raise ValueError("compute=True requires q, k_pool, v_pool")
            out = np.zeros((q.shape[0], self.heads.num_qo_heads, self.heads.head_dim))
            lse = np.full((q.shape[0], self.heads.num_qo_heads), -np.inf)
            traits = KernelTraits(
                head_dim=self.heads.head_dim, q_tile=max(sched_q_tile, 1),
                kv_tile=kv_tile, is_sparse=sparse_gather, kv_dtype=self.kv_dtype,
                backend="fa2",
            )
            kernel = get_kernel(self.variant, traits)
            n_slots = max(sum(1 for w in items if w.partial_slot >= 0), 1)
            rows_eff = sched_q_tile * self.heads.group_size
            partial_o = np.zeros((n_slots, rows_eff, self.heads.head_dim), dtype=np.float32)
            partial_lse = np.full((n_slots, rows_eff), -np.inf, dtype=np.float32)
            from repro.core.scheduler import MergeEntry

            merges: dict = {}
            for w in items:
                if w.partial_slot >= 0:
                    merges.setdefault((w.group, w.q_tile, w.kv_head), []).append(w)
            merge_entries = [
                MergeEntry(
                    0, key[0], ws[0].q_start, ws[0].q_rows, key[2],
                    tuple(w.partial_slot for w in sorted(ws, key=lambda x: x.kv_start)),
                )
                for key, ws in merges.items()
            ]
            plan = SchedulePlan(
                cta_queues=[items], merges=merge_entries,
                num_partial_slots=n_slots, q_tile_size=sched_q_tile,
                kv_chunk_size=kv_tile,
            )
            run_mapping(
                q, k_pool, v_pool, mapping, plan, kernel, self.heads,
                self.variant.bind_params({}), 1.0 / np.sqrt(self.heads.head_dim),
                kv_tile, out, lse, partial_o, partial_lse,
                kv_dtype=self.kv_dtype, fuse_head_groups=True,
                sparse_gather=sparse_gather, compute=True,
            )
        self.last_report = report
        return out, report
