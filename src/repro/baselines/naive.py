"""Naive attention baseline: materializes the full attention matrix.

The pre-FlashAttention formulation: ``S = QKᵀ`` and ``P = softmax(S)`` are
written to and re-read from global memory.  Used to motivate the IO
analysis; its cost model charges the quadratic logits traffic that
FlashAttention's online softmax eliminates.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.kernels import HeadConfig, reference_attention
from repro.gpu.cost import TileCost
from repro.gpu.executor import PersistentKernelExecutor, SimReport
from repro.gpu.spec import A100_40G, GPUSpec


def naive_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    causal: bool = False,
    sm_scale: Optional[float] = None,
) -> np.ndarray:
    """Numerically identical to :func:`reference_attention` (exact softmax)."""
    return reference_attention(q, k, v, causal=causal, sm_scale=sm_scale)


def naive_attention_report(
    qo_len: int,
    kv_len: int,
    heads: HeadConfig,
    gpu: GPUSpec = A100_40G,
    itemsize: int = 2,
) -> SimReport:
    """Cost of naive attention for one sequence: quadratic logits traffic.

    One block per head; reads Q/K/V, writes then re-reads the ``n_q × n_kv``
    score and probability matrices, writes O.
    """
    d = heads.head_dim
    logits_bytes = qo_len * kv_len * 4  # fp32 scores
    per_head = TileCost(
        flops=4.0 * qo_len * kv_len * d,
        padded_flops=4.0 * qo_len * kv_len * d,
        bytes_read=float((qo_len + 2 * kv_len) * d * itemsize + 2 * logits_bytes),
        bytes_written=float(qo_len * d * itemsize + 2 * logits_bytes),
        uses_tensor_cores=True,
    )
    exe = PersistentKernelExecutor(gpu)
    return exe.run_grid([per_head] * heads.num_qo_heads)
