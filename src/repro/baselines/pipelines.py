"""Unfused kernel pipelines for the StreamingLLM case study (paper §4.3).

StreamingLLM stores keys *unrotated* and applies RoPE at cache positions at
every step (positions shift as the window rolls), so an unfused pipeline
must, per step:

1. run a standalone RoPE kernel that reads the live K cache and the new
   queries, and writes rotated copies back to global memory;
2. run the attention kernel, which re-reads the rotated K plus V.

The fused FlashInfer kernel reads K/V once and rotates in registers — the
source of the paper's 1.6–3.7× kernel-bandwidth gap.  The *original*
StreamingLLM implementation additionally re-materializes (concatenates)
the sink+window cache tensors every step and launches several small helper
kernels ("sub-optimal and have unnecessary overheads"), modelled as extra
full-cache copy traffic plus extra launch overheads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.kernels import HeadConfig
from repro.gpu.cost import TileCost
from repro.gpu.executor import PersistentKernelExecutor, SimReport
from repro.gpu.spec import A100_40G, GPUSpec
from repro.variants.rope import apply_rope

_Q_ITEMSIZE = 2


def rope_kernel_report(
    n_tokens: int,
    num_heads: int,
    head_dim: int,
    gpu: GPUSpec = A100_40G,
    itemsize: int = _Q_ITEMSIZE,
) -> SimReport:
    """Cost of a standalone RoPE kernel over ``n_tokens`` per-head rows.

    Pure bandwidth: read every row, write every rotated row.  Work is
    spread evenly over the SMs (elementwise kernels balance trivially).
    """
    exe = PersistentKernelExecutor(gpu)
    total = n_tokens * num_heads
    per_sm = ceil_div_f(total, gpu.num_sms)
    bytes_per_row = head_dim * itemsize
    tile = TileCost(
        flops=6.0 * per_sm * head_dim,
        padded_flops=6.0 * per_sm * head_dim,
        bytes_read=float(per_sm * bytes_per_row),
        bytes_written=float(per_sm * bytes_per_row),
        uses_tensor_cores=False,
    )
    return exe.run_persistent([[tile] for _ in range(gpu.num_sms)])


def ceil_div_f(a: float, b: float) -> float:
    return float(np.ceil(a / b))


@dataclass
class StreamingStepCost:
    """Per-decode-step cost breakdown for a StreamingLLM pipeline."""

    rope: Optional[SimReport]
    attention: SimReport
    extra: Optional[SimReport] = None

    @property
    def total(self) -> SimReport:
        rep = self.attention
        if self.rope is not None:
            rep = self.rope.combine(rep)
        if self.extra is not None:
            rep = rep.combine(self.extra)
        return rep


def unfused_streaming_step(
    attention_report: SimReport,
    cache_len: int,
    batch_size: int,
    heads: HeadConfig,
    gpu: GPUSpec = A100_40G,
    original_impl: bool = False,
) -> StreamingStepCost:
    """Wrap an attention report with the unfused per-step RoPE cost.

    The RoPE kernel rotates the whole live K cache (cache positions shift
    every step) plus the new queries.  ``original_impl`` adds the original
    repository's cache re-materialization: a full read+write of both K and
    V caches and a handful of extra small-kernel launches.
    """
    n_rows = batch_size * (cache_len + 1)  # K cache + new queries (per head)
    rope = rope_kernel_report(n_rows, heads.num_kv_heads, heads.head_dim, gpu)
    extra = None
    if original_impl:
        exe = PersistentKernelExecutor(gpu)
        cache_bytes = (
            batch_size * cache_len * heads.num_kv_heads * heads.head_dim * _Q_ITEMSIZE
        )
        per_sm = TileCost(
            flops=0.0,
            padded_flops=0.0,
            bytes_read=2.0 * cache_bytes / gpu.num_sms,
            bytes_written=2.0 * cache_bytes / gpu.num_sms,
            uses_tensor_cores=False,
        )
        extra = exe.run_persistent([[per_sm] for _ in range(gpu.num_sms)])
        # The original implementation issues several small tensor-surgery
        # kernels (slice/cat/index) per layer; charge their launch overheads.
        extra = SimReport(
            makespan=extra.makespan + 6 * gpu.kernel_launch_overhead,
            total_flops=extra.total_flops,
            total_bytes=extra.total_bytes,
            num_tiles=extra.num_tiles,
            num_ctas=extra.num_ctas,
            per_cta_time=[],
        )
    return StreamingStepCost(rope=rope, attention=attention_report, extra=extra)


def unfused_rope_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    q_pos: np.ndarray,
    kv_pos: np.ndarray,
    causal: bool = True,
    sm_scale: Optional[float] = None,
    rope_theta: float = 10000.0,
) -> np.ndarray:
    """Numeric oracle for the unfused pipeline: rotate, then attend.

    Must agree with the fused kernel bit-for-bit up to fp accumulation —
    tested in ``tests/test_variants.py``.
    """
    from repro.core.kernels import reference_attention

    n_q, h_q, d = q.shape
    n_kv, h_kv, _ = k.shape
    q_rot = np.stack([apply_rope(q[:, h], q_pos, rope_theta) for h in range(h_q)], axis=1)
    k_rot = np.stack([apply_rope(k[:, h], kv_pos, rope_theta) for h in range(h_kv)], axis=1)
    return reference_attention(
        q_rot, k_rot, v, causal=causal, sm_scale=sm_scale, q_pos=q_pos, kv_pos=kv_pos
    )
