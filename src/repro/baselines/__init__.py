"""Baselines the paper compares against.

* :class:`FlashAttentionBaseline` — the open-source FA2/FA3 library:
  fixed tile sizes, grid launches, uniform flash-decoding splits (§4.2).
* :func:`naive_attention` / :func:`naive_attention_report` — quadratic-IO
  attention (pre-FlashAttention).
* :mod:`repro.baselines.pipelines` — unfused RoPE→attention pipelines and
  the original StreamingLLM implementation's overheads (§4.3).

Serving-level baselines ("Triton" and "TensorRT-LLM" backend analogs) live
in :mod:`repro.serving.backends`.
"""

from repro.baselines.flash_attention import (
    FA2_DECODE_TILE,
    FA2_PREFILL_TILE,
    FA3_DECODE_TILE,
    FA3_PREFILL_TILE,
    FlashAttentionBaseline,
)
from repro.baselines.naive import naive_attention, naive_attention_report
from repro.baselines.pipelines import (
    StreamingStepCost,
    rope_kernel_report,
    unfused_rope_attention,
    unfused_streaming_step,
)

__all__ = [
    "FA2_DECODE_TILE",
    "FA2_PREFILL_TILE",
    "FA3_DECODE_TILE",
    "FA3_PREFILL_TILE",
    "FlashAttentionBaseline",
    "naive_attention",
    "naive_attention_report",
    "StreamingStepCost",
    "rope_kernel_report",
    "unfused_rope_attention",
    "unfused_streaming_step",
]
