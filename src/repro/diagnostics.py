"""Human-readable diagnostics for plans and simulated executions.

Serving operators debug load-balance problems by *looking* at them; this
module renders schedule plans and simulation reports as text — per-CTA
load histograms, work-item tables, utilization summaries — used by the
examples and the CLI (``python -m repro``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.scheduler import SchedulePlan
from repro.gpu.executor import SimReport
from repro.gpu.spec import GPUSpec

_BAR = "█"
_BAR_WIDTH = 40


def format_report(report: SimReport, spec: Optional[GPUSpec] = None) -> str:
    """One-paragraph summary of a simulated kernel execution."""
    lines = [
        f"makespan      : {report.makespan * 1e6:10.2f} µs",
        f"work tiles    : {report.num_tiles:10d} over {report.num_ctas} CTAs",
        f"useful FLOPs  : {report.total_flops:10.3e}",
        f"traffic       : {report.total_bytes / 1e6:10.2f} MB",
        f"CTA balance   : {report.balance:10.2f}  (mean/max busy time)",
    ]
    if spec is not None:
        lines += [
            f"bandwidth     : {report.achieved_bandwidth() / 1e9:10.1f} GB/s "
            f"({report.bandwidth_utilization(spec):.0%} of {spec.name} peak)",
            f"compute       : {report.achieved_flops() / 1e12:10.2f} TFLOP/s "
            f"({report.flops_utilization(spec):.0%} of peak)",
        ]
    return "\n".join(lines)


def format_plan_load(plan: SchedulePlan, buckets: int = 16) -> str:
    """ASCII histogram of the *modelled* per-CTA cost of a plan
    (Algorithm 1's α·l_q + β·l_kv weights)."""
    from repro.core.scheduler import DEFAULT_ALPHA, DEFAULT_BETA

    costs = np.asarray(
        [
            sum(DEFAULT_ALPHA * w.q_rows + DEFAULT_BETA * w.kv_len for w in queue)
            for queue in plan.cta_queues
        ],
        dtype=np.float64,
    )
    if costs.size == 0 or costs.max() <= 0:
        return "(empty plan)"
    lines = []
    group = max(1, -(-costs.size // buckets))
    peak = costs.max()
    for start in range(0, costs.size, group):
        seg = costs[start : start + group]
        bar = _BAR * max(int(round(float(seg.mean()) / peak * _BAR_WIDTH)), 0)
        lines.append(
            f"CTA {start:4d}-{min(start + group, costs.size) - 1:4d} "
            f"|{bar:<{_BAR_WIDTH}}| cost {seg.mean():10.0f}"
        )
    return "\n".join(lines)


def format_cta_load(report: SimReport, buckets: int = 16) -> str:
    """ASCII histogram of per-CTA busy time (load-balance at a glance)."""
    busy = np.asarray(report.per_cta_time, dtype=np.float64)
    if busy.size == 0:
        return "(per-CTA times unavailable — combined report; see format_plan_load)"
    peak = busy.max()
    if peak <= 0:
        return "(all CTAs idle)"
    lines = []
    group = max(1, -(-busy.size // buckets))
    for start in range(0, busy.size, group):
        seg = busy[start : start + group]
        frac = float(seg.mean()) / peak
        bar = _BAR * max(int(round(frac * _BAR_WIDTH)), 0)
        lines.append(
            f"CTA {start:4d}-{min(start + group, busy.size) - 1:4d} "
            f"|{bar:<{_BAR_WIDTH}}| {seg.mean() * 1e6:8.2f} µs"
        )
    return "\n".join(lines)


def format_step_events(events, max_rows: int = 20) -> str:
    """Tabular view of a traced serving run's :class:`repro.obs.StepEvent`
    list: per-step kind, duration, tokens, dominant component, KV pressure."""
    header = (
        "  step  kind     dur(ms)  pf_tok  dc_tok  strm   attn%  gemm%  "
        "kv_used  pre"
    )
    rows = [header]
    shown = 0
    for ev in events:
        if shown >= max_rows:
            break
        if ev.kind == "idle":
            rows.append(
                f"  {ev.index:4d}  {'idle':<7s} {ev.duration * 1e3:7.3f}"
                + " " * 45
            )
            shown += 1
            continue
        dur = ev.duration or 1.0
        rows.append(
            f"  {ev.index:4d}  {ev.kind:<7s} {ev.duration * 1e3:7.3f} "
            f"{ev.num_prefill_tokens:7d} {ev.num_decode_tokens:7d} "
            f"{ev.num_streams:5d} {ev.component('attention') / dur:6.1%} "
            f"{ev.component('gemm') / dur:6.1%} {ev.kv_used_pages:8d} "
            f"{ev.preemptions:4d}"
        )
        shown += 1
    total = len(events) if hasattr(events, "__len__") else shown
    if shown < total:
        rows.append(f"  ... ({total - shown} more)")
    return "\n".join(rows)


def format_plan(plan: SchedulePlan, max_rows: int = 12) -> str:
    """Tabular view of a schedule plan: chunking, splits, merge fan-in."""
    items = [w for q in plan.cta_queues for w in q]
    n_split = sum(1 for w in items if w.partial_slot >= 0)
    header = [
        f"work items    : {len(items)} "
        f"({n_split} split → {plan.num_partial_slots} partial slots, "
        f"{len(items) - n_split} writethrough)",
        f"query tile    : {plan.q_tile_size} rows; KV chunk ≤ {plan.kv_chunk_size}",
        f"merge entries : {len(plan.merges)} "
        f"(fan-in ≤ {max((len(m.slots) for m in plan.merges), default=0)})",
        f"modelled balance: {plan.load_balance:.2f}",
    ]
    rows = ["  cta  group  qtile  q_rows  kv_range          slot"]
    shown = 0
    for cta, queue in enumerate(plan.cta_queues):
        if shown >= max_rows:
            break
        for w in queue:
            if shown >= max_rows:
                break
            slot = "write" if w.partial_slot < 0 else f"p{w.partial_slot}"
            rows.append(
                f"  {cta:4d} {w.group:6d} {w.q_tile:6d} {w.q_rows:7d} "
                f"[{w.kv_start:6d},{w.kv_stop:6d}) {slot:>8}"
            )
            shown += 1
    if shown < len(items):
        rows.append(f"  ... ({len(items) - shown} more)")
    return "\n".join(header + rows)
