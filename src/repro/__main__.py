"""Command-line entry point: ``python -m repro <command>``.

Subcommands:

* ``info``        — library, GPU-model and JIT-cache summary.
* ``demo``        — the quickstart flow with plan/report diagnostics.
* ``generate``    — run the tiny transformer through the paged engine.
* ``serve``       — a small serving comparison across attention backends.
* ``figures``     — how to regenerate every paper figure.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_info(args) -> int:
    import repro
    from repro.core import cache_info
    from repro.gpu import A100_40G, H100_80G

    print(f"repro {repro.__version__} — FlashInfer (MLSys 2025) reproduction")
    for spec in (A100_40G, H100_80G):
        print(
            f"  {spec.name}: {spec.num_sms} SMs, "
            f"{spec.peak_bandwidth_bytes / 1e12:.2f} TB/s, "
            f"{spec.peak_fp16_flops / 1e12:.0f} TFLOP/s fp16"
        )
    print(f"  JIT kernel cache: {cache_info()}")
    return 0


def _cmd_demo(args) -> int:
    from repro import A100_40G, AttentionMapping, BatchAttentionWrapper, WorkspaceBuffer
    from repro.core import HeadConfig, VANILLA
    from repro.diagnostics import format_plan, format_plan_load, format_report
    from repro.kvcache import PagedKVCache

    rng = np.random.default_rng(args.seed)
    heads = HeadConfig(8, 2, 64)
    cache = PagedKVCache(1024, 16, 2, 64)
    seqs = []
    for n in (700, 5300, 90, 2500):
        sid = cache.new_seq()
        cache.append(sid, rng.standard_normal((n, 2, 64)), rng.standard_normal((n, 2, 64)))
        seqs.append(sid)
    mapping = AttentionMapping(np.arange(len(seqs) + 1), cache.layout(seqs), causal=True)
    w = BatchAttentionWrapper(VANILLA, heads, WorkspaceBuffer(1 << 28), A100_40G, avg_qo_len=1)
    plan = w.plan(mapping)
    print("— schedule plan " + "—" * 48)
    print(format_plan(plan))
    q = rng.standard_normal((len(seqs), 8, 64))
    _, _, report = w.run(q, cache.k_pool, cache.v_pool)
    print("\n— simulated execution " + "—" * 42)
    print(format_report(report, A100_40G))
    print("\n— planned per-CTA load (Algorithm 1 weights) " + "—" * 18)
    print(format_plan_load(plan))
    return 0


def _cmd_generate(args) -> int:
    from repro.models import GenerationSession, TinyConfig, TinyTransformer
    from repro.models.sampling import SamplingParams, sample_token

    model = TinyTransformer(TinyConfig(), seed=args.seed)
    sess = GenerationSession(model)
    rng = np.random.default_rng(args.seed)
    prompt = rng.integers(0, model.config.vocab_size, 6).tolist()
    sid = sess.new_sequence()
    logits = sess.step([sid], [prompt])
    params = SamplingParams(temperature=args.temperature, top_k=args.top_k)
    tokens = [sample_token(logits[0], params, rng)]
    for _ in range(args.tokens - 1):
        logits = sess.step([sid], [[tokens[-1]]])
        tokens.append(sample_token(logits[0], params, rng))
    print(f"prompt : {prompt}")
    print(f"output : {tokens}")
    print(f"(temperature={args.temperature}, top_k={args.top_k}, paged attention engine)")
    return 0


def _cmd_serve(args) -> int:
    from repro.core import HeadConfig
    from repro.gpu import H100_80G
    from repro.serving import (
        CheckpointConfig, DirectoryStore, EngineConfig, FlashInferBackend,
        LLAMA_3_1_8B, ServingEngine, TritonBackend, TRTLLMBackend,
        sharegpt_workload,
    )

    model = LLAMA_3_1_8B
    heads = HeadConfig(model.num_qo_heads, model.num_kv_heads, model.head_dim)
    if args.recover:
        return _serve_recover(args, model, heads)
    if args.prefix_cache:
        return _serve_prefix(args, model)
    if args.overload:
        return _serve_overload(args, model)
    if args.disagg:
        return _serve_disagg(args, model)
    if args.tp > 1 or args.dp > 1 or args.fail_replica is not None:
        return _serve_cluster(args, model)
    requests = sharegpt_workload(args.requests, args.rate, seed=args.seed)
    if args.crash:
        return _serve_crash(args, model, heads, requests)
    print(f"{args.requests} ShareGPT-like requests at {args.rate} req/s, {model.name} on H100")
    for make in (FlashInferBackend, TritonBackend, TRTLLMBackend):
        backend = make(heads, H100_80G)
        # The FlashInfer run (the system under test) carries the tracer —
        # unless --chaos is on, in which case the chaos run below gets it.
        tracer = None
        if args.trace and make is FlashInferBackend and not args.chaos:
            from repro.obs import StepTracer

            tracer = StepTracer()
        # Checkpointing only instruments the system under test; the
        # competitor backends stay on the plain hot path.
        ckpt = store = None
        if args.checkpoint_every > 0 and make is FlashInferBackend:
            ckpt = CheckpointConfig(every_steps=args.checkpoint_every)
            if args.journal:
                store = DirectoryStore(args.journal)
        engine = ServingEngine(
            model, backend, H100_80G,
            EngineConfig(max_running=256, policy=args.policy), tracer=tracer,
            checkpoint=ckpt, checkpoint_store=store,
        )
        s = engine.run(requests).summary()
        print(
            f"  {backend.name:>10s}: ITL {s['median_itl'] * 1e3:6.2f} ms, "
            f"TTFT {s['median_ttft'] * 1e3:6.1f} ms, "
            f"P99 TTFT {s['p99_ttft'] * 1e3:5.0f} ms"
        )
        if ckpt is not None:
            print(
                f"             checkpoints: {int(s['ckpt_snapshots'])} snapshots, "
                f"{int(s['ckpt_journal_records'])} journal records"
                + (f" → {args.journal}" if args.journal else " (in memory)")
            )
        if tracer is not None:
            from repro.obs import summary_table, write_chrome_trace, write_csv

            write_chrome_trace(
                args.trace, tracer.events,
                metadata={"model": model.name, "backend": backend.name,
                          "requests": args.requests, "rate": args.rate},
            )
            print(f"\n  step trace → {args.trace} (load in chrome://tracing or Perfetto)")
            if args.trace_csv:
                write_csv(args.trace_csv, tracer.events)
                print(f"  step log   → {args.trace_csv}")
            print("\n" + summary_table(tracer) + "\n")

    if args.chaos:
        return _serve_chaos(args, model, heads, requests)
    return 0


def _serve_cluster(args, model) -> int:
    """The ``serve --tp N --dp M`` pass: run the workload on a simulated
    multi-GPU cluster, verify token-exactness against a single-GPU
    reference run, and report cluster/replica/link utilization.  With
    ``--fail-replica`` the run also kills (or drains) replica 0 mid-run
    and recovers it through the failover pipeline: heartbeat detection,
    live KV migration to a healthy replica over priced links, and a
    token-exact takeover resume."""
    from repro.cluster import (
        ClusterConfig,
        ClusterEngine,
        FailoverConfig,
        ReplicaFailure,
        expected_tokens,
    )
    from repro.gpu import H100_80G
    from repro.serving import EngineConfig, sharegpt_workload

    failure = None
    if args.fail_replica is not None:
        step, _, mode = str(args.fail_replica).partition(":")
        failure = ReplicaFailure(int(step), mode or "crash")

    requests = sharegpt_workload(args.requests, args.rate, seed=args.seed)
    cfg = ClusterConfig(
        tp=args.tp, dp=args.dp, topology=args.topology, router=args.router,
        engine=EngineConfig(max_running=256, policy=args.policy),
        checkpoint_every=args.checkpoint_every,
        failover=FailoverConfig() if failure is not None else None,
    )
    cluster = ClusterEngine(
        model, H100_80G, cfg, trace=bool(args.trace),
        replica_failures={0: failure} if failure is not None else None,
    )
    print(
        f"{args.requests} ShareGPT-like requests at {args.rate} req/s, "
        f"{model.name} on a {args.tp * args.dp}-GPU H100 cluster "
        f"(tp={args.tp}, dp={args.dp}, {args.topology} topology, "
        f"{args.router} router)"
    )
    if failure is not None:
        print(
            f"  failover  : replica 0 scripted to {failure.mode} at engine "
            f"step {failure.step} (heartbeat detection + live KV migration)"
        )
    reference = cluster.run_reference(requests)
    cm = cluster.run(requests)
    s = cm.summary()
    print(
        f"  cluster   : {s['cluster_total_time'] * 1e3:8.1f} ms makespan, "
        f"{s['cluster_throughput_tok_s']:7.0f} tok/s, "
        f"{int(s['cluster_output_tokens'])} tokens, "
        f"{int(s['cluster_preemptions'])} preemptions"
    )
    print(
        f"  latency   : p50_ttft={s['cluster_p50_ttft'] * 1e3:.2f}ms "
        f"p95_ttft={s['cluster_p95_ttft'] * 1e3:.2f}ms "
        f"p99_ttft={s['cluster_p99_ttft'] * 1e3:.2f}ms | "
        f"p50_itl={s['cluster_p50_itl'] * 1e3:.2f}ms "
        f"p95_itl={s['cluster_p95_itl'] * 1e3:.2f}ms "
        f"p99_itl={s['cluster_p99_itl'] * 1e3:.2f}ms"
    )
    for i in range(args.dp):
        print(
            f"  replica {i} : {int(s[f'replica{i}_requests']):3d} requests, "
            f"{s[f'replica{i}_total_time'] * 1e3:8.1f} ms, "
            f"{s[f'replica{i}_throughput_tok_s']:7.0f} tok/s, "
            f"{s[f'replica{i}_utilization']:6.1%} of makespan"
        )
    if "link_utilization" in s:
        print(
            f"  interconnect: {s['link_bytes'] / 1e9:.2f} GB on the wire, "
            f"{s['link_utilization']:.1%} busy "
            f"({cluster.topology.link.name}, "
            f"{int(s['link_degradations'])} degradation windows)"
        )
    if failure is not None:
        print(
            f"  failover  : detected in {s['failover_detect_s'] * 1e3:.1f} ms, "
            f"recovered in {s['failover_recovery_s'] * 1e3:.1f} ms "
            f"({int(s['failover_transitions'])} health transitions, "
            f"{int(s['failover_inflight_migrated'])} in-flight streams "
            f"carried over, {int(s['failover_fallbacks'])} fallbacks)"
        )
        print(
            f"  migration : migration_pages={int(s['migration_pages'])} in "
            f"{int(s['migration_chunks'])} chunks, "
            f"{s['migration_bytes'] / 1e6:.2f} MB wire "
            f"({int(s['migration_retries'])} link retries, "
            f"link_migration_bytes={int(s.get('link_migration_bytes', 0))})"
        )
    if args.dp > 1:
        base = ClusterEngine(
            model, H100_80G,
            ClusterConfig(
                tp=args.tp, dp=1, topology=args.topology, router=args.router,
                engine=EngineConfig(max_running=256, policy=args.policy),
            ),
        ).run(requests)
        speedup = (
            cm.throughput_tokens_per_s() / base.throughput_tokens_per_s()
            if base.throughput_tokens_per_s() > 0 else float("nan")
        )
        print(f"  dp_speedup={speedup:.2f} (vs dp=1 at tp={args.tp})")
    divergent, compared = cm.token_divergence(expected_tokens(reference))
    print(
        f"  token_divergence={divergent} "
        f"({compared} streams compared vs single-GPU reference)"
    )
    if args.trace:
        from repro.obs import write_cluster_trace

        write_cluster_trace(
            args.trace, cluster.trace_processes(),
            metadata={"model": model.name, "tp": args.tp, "dp": args.dp,
                      "topology": args.topology, "router": args.router,
                      "requests": args.requests, "rate": args.rate},
        )
        print(f"  cluster trace → {args.trace} "
              f"({args.dp} replica process rows, shared simulated clock)")
    return 0 if divergent == 0 else 1


def _serve_disagg(args, model) -> int:
    """The ``serve --disagg prefill=N,decode=M`` pass: split the dp pool
    into dedicated prefill and decode replicas, run a mixed long-prompt +
    chatty workload, ship every finished prompt's live KV pages to its
    paired decode replica over priced ``handoff`` links, and verify the
    resumed streams token-exact against a single-GPU reference run."""
    from repro.cluster import (
        ClusterConfig,
        ClusterEngine,
        expected_tokens,
        parse_roles,
    )
    from repro.gpu import H100_80G
    from repro.serving import EngineConfig, mixed_disagg_workload

    counts = {}
    for part in str(args.disagg).split(","):
        key, _, value = part.partition("=")
        counts[key.strip()] = int(value) if value else 0
    dp = sum(counts.values())
    prefill_ids, decode_ids = parse_roles(args.disagg, dp)

    requests = mixed_disagg_workload(args.requests, args.rate, seed=args.seed)
    long_prompts = sum(1 for r in requests if r.prompt_len >= 512)
    engine_cfg = EngineConfig(
        max_running=256, policy=args.policy,
        chunked_prefill=True, composable=True,
    )
    cfg = ClusterConfig(
        tp=args.tp, dp=dp, topology=args.topology, roles=args.disagg,
        engine=engine_cfg,
    )
    cluster = ClusterEngine(model, H100_80G, cfg)
    print(
        f"{len(requests)} mixed requests ({long_prompts} long-prompt, "
        f"{len(requests) - long_prompts} chatty) at {args.rate} req/s, "
        f"{model.name} on a {args.tp * dp}-GPU H100 cluster "
        f"(disaggregated: prefill={list(prefill_ids)}, "
        f"decode={list(decode_ids)}, {args.topology} topology)"
    )
    reference = cluster.run_reference(requests)
    cm = cluster.run(requests)
    s = cm.summary()
    print(
        f"  cluster   : {s['cluster_total_time'] * 1e3:8.1f} ms makespan, "
        f"{s['cluster_throughput_tok_s']:7.0f} tok/s, "
        f"{int(s['cluster_output_tokens'])} tokens"
    )
    for i in range(dp):
        role = "prefill" if i in prefill_ids else "decode"
        print(
            f"  replica {i} : {role:>7s}, "
            f"{int(s[f'replica{i}_requests']):3d} requests, "
            f"{s[f'replica{i}_total_time'] * 1e3:8.1f} ms, "
            f"{s[f'replica{i}_throughput_tok_s']:7.0f} tok/s"
        )
    print(
        f"  handoff   : handoff_requests={int(s['handoff_requests'])} "
        f"handoff_pages={int(s['handoff_pages'])} "
        f"handoff_bytes={int(s['handoff_bytes'])} "
        f"handoff_chunks={int(s['handoff_chunks'])} "
        f"handoff_retries={int(s['handoff_retries'])} "
        f"handoff_pages_skipped={int(s['handoff_pages_skipped'])}"
    )
    print(
        f"  interconnect: "
        f"link_handoff_bytes={int(s.get('link_handoff_bytes', 0))} "
        f"({s['handoff_transfer_s'] * 1e3:.2f} ms on the wire, "
        f"{cluster.topology.link.name})"
    )
    print(
        f"  ttft      : p50_ttft={s['cluster_p50_ttft'] * 1e3:.2f}ms "
        f"p95_ttft={s['cluster_p95_ttft'] * 1e3:.2f}ms "
        f"p99_ttft={s['cluster_p99_ttft'] * 1e3:.2f}ms"
    )
    print(
        f"  itl       : p50_itl={s['cluster_p50_itl'] * 1e3:.2f}ms "
        f"p95_itl={s['cluster_p95_itl'] * 1e3:.2f}ms "
        f"p99_itl={s['cluster_p99_itl'] * 1e3:.2f}ms"
    )
    divergent, compared = cm.token_divergence(expected_tokens(reference))
    print(
        f"  token_divergence={divergent} "
        f"({compared} streams compared vs single-GPU reference)"
    )
    ok = divergent == 0 and int(s["handoff_requests"]) > 0
    return 0 if ok else 1


def _serve_overload(args, model) -> int:
    """The ``serve --overload`` pass: drive a bursty multi-tenant workload
    at a multiple of cluster capacity through the overload-hardened front
    door (per-tenant token buckets + client retries), per-replica circuit
    breakers, hedged prefill and the SLO-driven brownout ladder — then run
    the *same trace* without the overload layer and report the SLO
    attainment delta.  Accepted streams are verified token-exact against
    an uncontended single-GPU reference (brownout-clamped streams must be
    exact prefixes)."""
    from repro.cluster import ClusterConfig, ClusterEngine, expected_tokens
    from repro.cluster.router import BreakerConfig
    from repro.faults import FaultPlan
    from repro.gpu import H100_80G
    from repro.serving import EngineConfig, bursty_workload
    from repro.serving.overload import (
        OverloadConfig,
        overload_token_divergence,
        slo_attainment,
    )

    dp = max(args.dp, 2)
    requests = bursty_workload(
        args.requests, args.rate, seed=args.seed, tenants=args.tenants,
        burst=args.burst, burst_len=0.25, burst_every=0.6,
    )
    offered = len(requests)
    span = requests[-1].arrival if requests else 0.0
    engine_cfg = EngineConfig(
        max_running=16, chunked_prefill=True, composable=True,
        prefill_chunk_size=256, policy=args.policy,
    )
    overload = OverloadConfig(
        tenants=args.tenants, admit_rate=24.0, burst_capacity=8.0,
        max_client_retries=5, retry_budget=2.0, retry_base=0.08,
        seed=args.seed, slo_ttft=0.4, engage_after=25, anneal_after=60,
        brownout_clamp=32,
        breaker=BreakerConfig(fail_threshold=3, cooldown=0.25,
                              probe_successes=2, pressure_threshold=0.5),
    )
    print(
        f"{offered} bursty requests ({args.tenants} tenants, {args.burst:g}x "
        f"bursts) in {span:.2f} s, {model.name} on a dp={dp} H100 cluster "
        f"({args.router} router, overload front door armed)"
    )

    cluster = ClusterEngine(
        model, H100_80G,
        ClusterConfig(dp=dp, topology=args.topology, router=args.router,
                      engine=engine_cfg, overload=overload),
        fault_plan=FaultPlan(seed=args.seed, timeout_rate=0.08),
    )
    reference = cluster.run_reference(requests)
    cm = cluster.run(requests)
    s = cm.summary()

    # Same trace, no overload layer: the control arm for the SLO delta.
    baseline = ClusterEngine(
        model, H100_80G,
        ClusterConfig(dp=dp, topology=args.topology, router=args.router,
                      engine=engine_cfg),
    ).run(requests)
    base_met, base_frac = slo_attainment(baseline, offered, overload.slo_ttft)

    print(
        f"  front door: overload_offered={int(s['overload_offered'])} "
        f"overload_admitted={int(s['overload_admitted'])} "
        f"overload_rejected={int(s['overload_rejected'])} "
        f"overload_retries={int(s['overload_retries'])} "
        f"overload_dropped={int(s['overload_dropped'])}"
    )
    print(
        f"  breakers  : breaker_open_total={int(s['breaker_open_total'])} "
        f"breaker_half_open_total={int(s['breaker_half_open_total'])} "
        f"breaker_close_total={int(s['breaker_close_total'])} "
        f"(timeouts={int(s['overload_timeouts'])}, "
        f"reroutes={int(s['overload_reroutes'])})"
    )
    print(
        f"  brownout  : brownout_engaged={int(s['brownout_engaged'])} "
        f"brownout_annealed={int(s['brownout_annealed'])} "
        f"peak_level={int(s['brownout_peak_level'])} "
        f"final_level={int(s['brownout_final_level'])}"
    )
    print(
        f"  hedging   : hedged_prefills={int(s['hedged_prefills'])} "
        f"hedge_wins={int(s['hedge_wins'])}"
    )
    print(
        f"  slo_attainment={s['slo_attainment']:.3f} "
        f"(baseline {base_frac:.3f} without the overload layer, "
        f"TTFT <= {overload.slo_ttft:g} s, drops count as misses)"
    )
    divergent, compared = overload_token_divergence(
        cm, expected_tokens(reference)
    )
    print(
        f"  token_divergence={divergent} "
        f"({compared} accepted streams compared vs uncontended reference)"
    )
    return 0 if divergent == 0 else 1


def _serve_prefix(args, model) -> int:
    """The ``serve --prefix-cache`` pass: serve a shared-prefix workload
    cold (no cache) and warm (radix prefix cache + cascade attention),
    verify both against the single-GPU token oracle, and report the
    prefill work the cache removed."""
    import dataclasses

    from repro.cluster import ClusterConfig, ClusterEngine, expected_tokens
    from repro.gpu import H100_80G
    from repro.serving import EngineConfig, shared_prefix_workload

    requests = shared_prefix_workload(args.requests, args.rate, seed=args.seed)
    shared = sum(r.prefix_len for r in requests)
    total = sum(r.prompt_len for r in requests)
    warm_engine = EngineConfig(
        max_running=256, policy=args.policy, chunked_prefill=True,
        prefix_cache=True, composable=True,
    )
    cfg = ClusterConfig(
        tp=args.tp, dp=args.dp, topology=args.topology, router=args.router,
        engine=warm_engine, checkpoint_every=args.checkpoint_every,
    )
    print(
        f"{args.requests} shared-prefix requests at {args.rate} req/s "
        f"({shared / total:.0%} of prompt tokens shared), {model.name} on a "
        f"{args.tp * args.dp}-GPU H100 cluster (tp={args.tp}, dp={args.dp}, "
        f"{args.router} router)"
    )
    cold_cfg = dataclasses.replace(
        cfg,
        engine=dataclasses.replace(warm_engine, prefix_cache=False, composable=False),
    )
    cold_cluster = ClusterEngine.from_config(cold_cfg, model=model, gpu=H100_80G)
    # The oracle is the cold-cache single-GPU run: the warm cluster must
    # reproduce its tokens exactly for caching to be timing-only.
    oracle = expected_tokens(cold_cluster.run_reference(requests))
    cold = cold_cluster.run(requests)
    warm = ClusterEngine.from_config(cfg, model=model, gpu=H100_80G).run(requests)
    cs, ws = cold.summary(), warm.summary()

    hit = int(ws.get("cluster_radix_hit_tokens", 0))
    flops_saved = model.num_layers * model.layer_gemm_flops(hit)
    bytes_saved = ws.get("cluster_cascade_bytes_saved", 0.0)
    print(
        f"  cold   : {cs['cluster_total_time'] * 1e3:8.1f} ms makespan, "
        f"{cs['cluster_throughput_tok_s']:7.0f} tok/s, "
        f"{total} prompt tokens prefilled"
    )
    print(
        f"  warm   : {ws['cluster_total_time'] * 1e3:8.1f} ms makespan, "
        f"{ws['cluster_throughput_tok_s']:7.0f} tok/s, "
        f"{total - hit} prompt tokens prefilled"
    )
    print(
        f"  radix_hit_tokens={hit} "
        f"({hit / total:.0%} of prompt tokens served from cache)"
    )
    print(
        f"  prefill_flops_saved={flops_saved:.3e} "
        f"cascade_hbm_bytes_saved={bytes_saved:.3e} "
        f"cascade_steps={int(ws.get('cluster_cascade_steps', 0))}"
    )
    cold_div, cold_cmp = cold.token_divergence(oracle)
    warm_div, warm_cmp = warm.token_divergence(oracle)
    divergent = cold_div + warm_div
    print(
        f"  token_divergence={divergent} "
        f"(cold {cold_div}/{cold_cmp}, warm {warm_div}/{warm_cmp} streams "
        f"vs cold single-GPU reference)"
    )
    ok = divergent == 0 and hit > 0
    return 0 if ok else 1


def _serve_chaos(args, model, heads, requests) -> int:
    """The ``serve --chaos`` pass: a no-fault resilience baseline, then a
    seeded chaos run, and a token-exactness comparison between the two."""
    from repro.faults import ResilienceConfig, chaos_plan
    from repro.gpu import H100_80G
    from repro.serving import EngineConfig, FlashInferBackend, ServingEngine

    resil = ResilienceConfig(deadline=args.deadline, max_retries=args.max_retries)
    cfg = EngineConfig(max_running=256, policy=args.policy)

    baseline = ServingEngine(
        model, FlashInferBackend(heads, H100_80G), H100_80G, cfg, resilience=resil
    ).run(requests)

    tracer = None
    if args.trace:
        from repro.obs import StepTracer

        tracer = StepTracer()
    chaos = ServingEngine(
        model, FlashInferBackend(heads, H100_80G), H100_80G, cfg,
        tracer=tracer, fault_plan=chaos_plan(args.chaos_seed), resilience=resil,
    ).run(requests)

    s = chaos.summary()
    expected = {(t.req_id, t.gen_index): t.tokens for t in baseline.traces}
    compared = [
        t for t in chaos.traces if (t.req_id, t.gen_index) in expected
    ]
    divergent = sum(
        1 for t in compared if t.tokens != expected[(t.req_id, t.gen_index)]
    )
    print(f"\n  chaos (seed {args.chaos_seed}):")
    print(
        f"    faults_injected={int(s['faults_injected'])} "
        f"kernel_faults={int(s['kernel_faults'])} "
        f"checksum_failures={int(s['checksum_failures'])} "
        f"alloc_faults={int(s['alloc_faults'])}"
    )
    print(
        f"    retries={int(s['retries'])} sheds={int(s['sheds'])} "
        f"degraded_steps={int(s['degraded_steps'])} "
        f"watchdog_flags={int(s['watchdog_flags'])}"
    )
    print(
        f"    token_divergence={divergent} "
        f"({len(compared)} streams compared, {chaos.sheds} shed)"
    )
    if tracer is not None:
        from repro.obs import summary_table, write_chrome_trace, write_csv

        write_chrome_trace(
            args.trace, tracer.events,
            metadata={"model": model.name, "backend": "flashinfer",
                      "requests": args.requests, "rate": args.rate,
                      "chaos_seed": args.chaos_seed},
            fault_events=tracer.fault_events,
        )
        print(f"\n  chaos trace → {args.trace} "
              f"({len(tracer.fault_events)} fault events embedded)")
        if args.trace_csv:
            write_csv(args.trace_csv, tracer.events)
            print(f"  step log    → {args.trace_csv}")
        print("\n" + summary_table(tracer) + "\n")
    return 0 if divergent == 0 else 1


def _serve_crash(args, model, heads, requests) -> int:
    """The ``serve --crash N`` pass: an uninterrupted baseline, then a
    kill/restore campaign (scripted deaths, plus seeded-random ones under
    ``--crash-rate``) recovered via snapshot + journal replay, and a
    token-exactness comparison between the two."""
    from repro.faults import ResilienceConfig, chaos_plan
    from repro.gpu import H100_80G
    from repro.serving import (
        CheckpointConfig, CheckpointStore, CrashHarness, DirectoryStore,
        EngineConfig, FlashInferBackend, ServingEngine,
    )

    resil = ResilienceConfig(deadline=args.deadline, max_retries=args.max_retries)
    cfg = EngineConfig(max_running=256, policy=args.policy)
    every = args.checkpoint_every if args.checkpoint_every > 0 else 4

    # Uninterrupted baseline: same workload, same fault seed (when --chaos),
    # no deaths.  Every surviving stream must match it byte for byte.
    baseline = ServingEngine(
        model, FlashInferBackend(heads, H100_80G), H100_80G, cfg,
        fault_plan=chaos_plan(args.chaos_seed) if args.chaos else None,
        resilience=resil,
    ).run(requests)
    expected = {(t.req_id, t.gen_index): t.tokens for t in baseline.traces}

    store = DirectoryStore(args.journal) if args.journal else CheckpointStore()
    # One fault plan shared across process "lives" keeps the crash RNG
    # stream advanced past already-fired deaths (recovery rewinds every
    # other site stream to the snapshot).
    shared_plan = None
    if args.chaos or args.crash_rate > 0:
        shared_plan = chaos_plan(
            args.chaos_seed if args.chaos else 0, crash_rate=args.crash_rate
        )
        if not args.chaos:
            for site in ("kernel", "corrupt", "alloc", "straggler"):
                shared_plan.disarm(site)
    tracer = None
    if args.trace:
        from repro.obs import StepTracer

        tracer = StepTracer()

    def factory():
        return ServingEngine(
            model, FlashInferBackend(heads, H100_80G), H100_80G, cfg,
            tracer=tracer, fault_plan=shared_plan, resilience=resil,
            checkpoint=CheckpointConfig(every_steps=every),
            checkpoint_store=store,
        )

    # Alternate boundary and mid-step kills so any N >= 2 exercises both.
    script = [
        (3 + 4 * k, "mid-step" if k % 2 else "boundary") for k in range(args.crash)
    ]
    report = CrashHarness(
        factory, requests, store, crash_script=script, expected_tokens=expected
    ).run()

    s = report.metrics.summary()
    phases = ", ".join(
        f"{p}×{report.crash_phases.count(p)}"
        for p in dict.fromkeys(report.crash_phases)
    )
    print(f"\n  kill/restore ({args.crash} scripted kills, "
          f"crash-rate {args.crash_rate}, snapshot every {every} steps):")
    print(f"    crashes={report.crashes} ({phases}) recoveries={report.recoveries}")
    print(
        f"    snapshots={int(s['ckpt_snapshots'])} "
        f"journal_records={int(s['ckpt_journal_records'])} "
        f"replayed_tokens={int(s['recover_replayed_tokens'])} "
        f"resumed_streams={int(s['recover_resumed'])}"
    )
    print(
        f"    token_divergence={report.token_divergence} "
        f"({report.compared} streams compared vs uninterrupted baseline)"
    )
    if args.journal:
        print(f"    journal + snapshots → {args.journal}")
    if tracer is not None:
        from repro.obs import write_chrome_trace

        write_chrome_trace(
            args.trace, tracer.events,
            metadata={"model": model.name, "backend": "flashinfer",
                      "requests": args.requests, "rate": args.rate,
                      "crashes": report.crashes},
            fault_events=tracer.fault_events,
        )
        print(f"    recovery trace → {args.trace} "
              f"({len(tracer.fault_events)} fault events embedded)")
    ok = report.token_divergence == 0 and report.crashes >= args.crash
    return 0 if ok else 1


def _serve_recover(args, model, heads) -> int:
    """The ``serve --recover`` cold start: open the journal directory from
    a previous (killed) ``serve --checkpoint-every N --journal DIR`` run,
    load and verify the latest snapshot, and resume it to completion."""
    from repro.faults import FaultPlan
    from repro.gpu import H100_80G
    from repro.serving import (
        CheckpointConfig, DirectoryStore, EngineConfig, FlashInferBackend,
        NoSnapshotError, RecoveryManager, ServingEngine,
        SnapshotIntegrityError, SnapshotVerificationError, WorldMismatchError,
    )

    if not args.journal:
        print("serve --recover needs --journal DIR (the directory the "
              "crashed run was journaling to)", file=sys.stderr)
        return 2
    store = DirectoryStore(args.journal)
    try:
        # A snapshot taken at one cluster shape must not be resumed into
        # another: the KV cache is sharded by tp and the request subset by
        # dp, so a shape change would silently corrupt the resumed run.
        recovered = RecoveryManager(
            store, expected_world={"tp": args.tp, "dp": args.dp}
        ).recover()
    except NoSnapshotError as exc:
        print(f"nothing to recover: {exc}", file=sys.stderr)
        return 1
    except WorldMismatchError as exc:
        print(f"refusing to resume: {exc}", file=sys.stderr)
        return 1
    except (SnapshotIntegrityError, SnapshotVerificationError) as exc:
        print(f"refusing to resume: {exc}", file=sys.stderr)
        return 1
    snap = recovered.snapshot
    print(
        f"recovering {args.journal}: snapshot {recovered.snapshot_id} "
        f"(step {snap['steps_done']}, t={snap['t']:.3f}s, "
        f"{len(recovered.corrupt_pages)} KV pages to recompute, "
        f"{recovered.replay.window_size if recovered.replay else 0} "
        f"journaled tokens to replay)"
    )
    # Rebuild the fault plan from the snapshot, but keep the crash site
    # disarmed: re-seeding the death we are recovering from would re-kill
    # the resumed run at the same step, forever.
    plan = None
    if snap["fault_plan"] is not None:
        plan = FaultPlan.from_state(snap["fault_plan"])
        plan.disarm("crash")
    every = args.checkpoint_every if args.checkpoint_every > 0 else 4
    # Rebuild the engine at the snapshot's cluster shape: sharded heads
    # for tp > 1, and the dp coordinates the replica ran at.
    if args.tp > 1:
        from repro.cluster import plan_tp_sharding

        heads = plan_tp_sharding(model, args.tp).shard_heads
    snap_world = snap.get("world") or {"tp": 1, "dp": 1, "replica": 0}
    engine = ServingEngine(
        model, FlashInferBackend(heads, H100_80G), H100_80G,
        EngineConfig(max_running=256, policy=args.policy,
                     tensor_parallel=args.tp),
        fault_plan=plan,
        checkpoint=CheckpointConfig(every_steps=every), checkpoint_store=store,
    )
    engine.dp_world = int(snap_world["dp"])
    engine.dp_rank = int(snap_world["replica"])
    s = engine.resume(recovered).summary()
    print(
        f"  resumed to completion: ITL {s['median_itl'] * 1e3:6.2f} ms, "
        f"TTFT {s['median_ttft'] * 1e3:6.1f} ms, "
        f"{int(s['recover_resumed'])} streams resumed"
    )
    print(
        f"  replay: {int(s['recover_replayed_tokens'])} journaled tokens "
        f"re-verified, divergence={int(s['recover_token_divergence'])}"
    )
    return 0 if int(s["recover_token_divergence"]) == 0 else 1


def _cmd_figures(args) -> int:
    print("Regenerate every paper figure (tables print with -s):")
    print("  pytest benchmarks/ --benchmark-only -s")
    print("Individual figures:")
    for fig, target in [
        ("Figure 7 (end-to-end serving)", "benchmarks/test_fig7_e2e_serving.py"),
        ("Figure 8 (kernel dynamism)", "benchmarks/test_fig8_kernel_dynamism.py"),
        ("Figure 9 (StreamingLLM)", "benchmarks/test_fig9_streaming_llm.py"),
        ("Figure 10 (parallel generation)", "benchmarks/test_fig10_parallel_generation.py"),
        ("Figure 12 (sparse overhead)", "benchmarks/test_fig12_sparse_overhead.py"),
        ("Design ablations", "benchmarks/test_ablation_*.py"),
    ]:
        print(f"  {fig:38s} pytest {target} --benchmark-only -s")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="FlashInfer reproduction: attention engine demos and tools.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="library and simulated-GPU summary")

    demo = sub.add_parser("demo", help="plan/run a batch with diagnostics")
    demo.add_argument("--seed", type=int, default=0)

    gen = sub.add_parser("generate", help="generate tokens with the tiny model")
    gen.add_argument("--tokens", type=int, default=16)
    gen.add_argument("--temperature", type=float, default=0.8)
    gen.add_argument("--top-k", type=int, default=8, dest="top_k")
    gen.add_argument("--seed", type=int, default=0)

    from repro.cluster.router import available_routing_policies
    from repro.cluster.topology import TOPOLOGY_PRESETS
    from repro.serving.policy import available_policies

    serve = sub.add_parser("serve", help="compare serving backends")
    serve.add_argument("--requests", type=int, default=40)
    serve.add_argument("--rate", type=float, default=60.0)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--tp", type=int, default=1, metavar="N",
        help="tensor-parallel shards per replica (must divide the model's "
        "query heads); tp > 1 switches serve to the cluster path with a "
        "token-exactness check against a single-GPU reference run",
    )
    serve.add_argument(
        "--dp", type=int, default=1, metavar="M",
        help="data-parallel replicas behind the cluster router; dp > 1 "
        "also reports the throughput speedup over a dp=1 run",
    )
    serve.add_argument(
        "--topology", default="nvlink", choices=sorted(TOPOLOGY_PRESETS),
        help="interconnect preset used to price collectives on the "
        "cluster path (default: nvlink)",
    )
    serve.add_argument(
        "--router", default="round-robin",
        help="routing policy for dp > 1; registered: "
        f"{', '.join(available_routing_policies())} (default: round-robin)",
    )
    serve.add_argument(
        "--policy", default="fcfs",
        help="scheduling policy for the admitted prefill queue; registered: "
        f"{', '.join(available_policies())} "
        "(default: fcfs, token-exact with the classic engine)",
    )
    serve.add_argument(
        "--trace", metavar="OUT.json", default=None,
        help="record a step-level trace of the FlashInfer run and write "
        "Chrome trace_event JSON (chrome://tracing / Perfetto)",
    )
    serve.add_argument(
        "--trace-csv", metavar="OUT.csv", default=None, dest="trace_csv",
        help="also write the per-step CSV log (requires --trace)",
    )
    serve.add_argument(
        "--prefix-cache", action="store_true", dest="prefix_cache",
        help="serve a shared-prefix workload cold and warm (radix prefix "
        "cache + cascade attention), verify token-exactness against the "
        "single-GPU reference, and report the prefill FLOPs and HBM bytes "
        "saved (composes with --tp/--dp/--router)",
    )
    serve.add_argument(
        "--chaos", action="store_true",
        help="after the comparison, run the FlashInfer engine again under a "
        "seeded fault plan (transient kernel faults, KV corruption, alloc "
        "failures, stragglers) and verify token-exact recovery",
    )
    serve.add_argument(
        "--chaos-seed", type=int, default=7, dest="chaos_seed",
        help="seed for the chaos fault plan (default: 7)",
    )
    serve.add_argument(
        "--deadline", type=float, default=None,
        help="per-request deadline in seconds after arrival; expired "
        "requests are shed (chaos/resilience runs only)",
    )
    serve.add_argument(
        "--max-retries", type=int, default=3, dest="max_retries",
        help="recompute retries per stream before it is shed (default: 3)",
    )
    serve.add_argument(
        "--checkpoint-every", type=int, default=0, dest="checkpoint_every",
        metavar="N",
        help="snapshot the full engine state every N executed steps "
        "(0 = off, the default: no journal writes, no snapshot copies)",
    )
    serve.add_argument(
        "--journal", metavar="DIR", default=None,
        help="persist snapshots and the write-ahead request journal to DIR "
        "(atomic snap-*.json files + journal.jsonl); omit for in-memory",
    )
    serve.add_argument(
        "--recover", action="store_true",
        help="cold start: load the latest snapshot from --journal DIR, "
        "verify its KV pages, replay the journal window and resume the "
        "killed run to completion",
    )
    serve.add_argument(
        "--crash", type=int, default=0, metavar="N",
        help="kill/restore campaign: inject N scripted engine deaths "
        "(alternating step-boundary and mid-step), recover each from the "
        "latest snapshot + journal, and verify token-exactness against an "
        "uninterrupted baseline (composes with --chaos)",
    )
    serve.add_argument(
        "--crash-rate", type=float, default=0.0, dest="crash_rate",
        metavar="P",
        help="additionally arm seeded-random engine death at probability P "
        "per step phase (requires --crash for the kill/restore harness)",
    )
    serve.add_argument(
        "--overload", action="store_true",
        help="overload drill: drive a bursty multi-tenant workload at a "
        "multiple of cluster capacity through the tenant-aware front door, "
        "circuit breakers, hedged prefill and the SLO-driven brownout "
        "ladder (dp >= 2; accepted streams stay token-exact vs an "
        "uncontended reference, and the run reports the SLO attainment "
        "delta vs the same trace without the overload layer)",
    )
    serve.add_argument(
        "--tenants", type=int, default=4,
        help="tenant count for --overload: per-tenant token buckets at the "
        "front door, weighted-fair admission (default: 4)",
    )
    serve.add_argument(
        "--burst", type=float, default=3.0,
        help="burst multiplier for --overload's arrival process: seeded "
        "Poisson bursts at this multiple of the diurnal base rate "
        "(default: 3.0)",
    )
    serve.add_argument(
        "--disagg", default=None, metavar="prefill=N,decode=M",
        help="disaggregated serving: partition the dp pool into dedicated "
        "prefill and decode replicas; finished prompts hand their live KV "
        "pages to a paired decode replica over priced handoff links "
        "(checksummed chunks, bounded retry), and the resumed streams are "
        "verified token-exact against a single-GPU reference",
    )
    serve.add_argument(
        "--fail-replica", default=None, dest="fail_replica",
        metavar="STEP[:crash|drain]",
        help="cluster failover demo: kill (or drain, for planned scale-in) "
        "replica 0 at engine step STEP with failover enabled — heartbeat "
        "timeout detection, live KV migration to a healthy replica over "
        "priced topology links, token-exact takeover resume (use with "
        "--dp >= 2; dp=1 falls back to in-place recovery)",
    )

    sub.add_parser("figures", help="how to regenerate the paper figures")

    args = parser.parse_args(argv)
    return {
        "info": _cmd_info,
        "demo": _cmd_demo,
        "generate": _cmd_generate,
        "serve": _cmd_serve,
        "figures": _cmd_figures,
    }[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
