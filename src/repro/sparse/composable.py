"""Composable formats: multi-format decomposition for shared prefixes.

Paper §3.1.2 (Figure 3): when several requests share a KV prefix, a single
block-sparse format must choose one ``B_r``, trading shared-memory reuse
against fragmentation.  Instead, the sparse matrix is *decomposed* into a
stack of formats — a large-``B_r`` format over the dense shared-prefix
submatrix (all sharing queries reuse one shared-memory load of the prefix)
plus a small-``B_r`` format over the unique suffixes.  No KV data moves;
only new index arrays are computed.  Partial attention states from each
format are merged with the ``⊕`` operator (§2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.sparse.layout import AttentionMapping, BlockSparseKV


@dataclass(frozen=True)
class PrefixCluster:
    """A run of consecutive requests sharing ``prefix_len`` leading KV tokens."""

    requests: Tuple[int, ...]
    prefix_len: int

    def __post_init__(self) -> None:
        reqs = tuple(int(r) for r in self.requests)
        if list(reqs) != list(range(reqs[0], reqs[0] + len(reqs))):
            raise ValueError(f"cluster requests must be consecutive, got {reqs}")
        object.__setattr__(self, "requests", reqs)
        if self.prefix_len < 0:
            raise ValueError("prefix_len must be non-negative")


@dataclass
class ComposableFormat:
    """An ordered stack of :class:`AttentionMapping` formats.

    The attention output for each packed query row is the ``⊕``-merge of the
    partial states produced by every format that covers that row.  The stack
    must jointly cover each query's full KV set exactly once.
    """

    mappings: List[AttentionMapping] = field(default_factory=list)

    @classmethod
    def single(cls, mapping: AttentionMapping) -> "ComposableFormat":
        return cls([mapping])

    @property
    def total_qo(self) -> int:
        return max((m.total_qo for m in self.mappings), default=0)

    def __iter__(self):
        return iter(self.mappings)

    def __len__(self) -> int:
        return len(self.mappings)


def decompose_shared_prefix(
    mapping: AttentionMapping,
    clusters: Sequence[PrefixCluster],
    min_prefix_blocks: int = 1,
) -> ComposableFormat:
    """Split a batch mapping into prefix + suffix formats.

    Parameters
    ----------
    mapping:
        The single-format batch mapping (one group per request, causal).
    clusters:
        Shared-prefix clusters.  Prefix lengths are rounded *down* to the KV
        block size (only whole blocks can be shared without data movement);
        clusters whose aligned prefix is shorter than
        ``min_prefix_blocks`` blocks are left in the suffix format.
    Returns
    -------
    A two-format stack ``[prefix, suffix]`` (prefix omitted if no cluster
    qualifies).  The prefix format has one group per cluster with
    ``block_row_size`` = the cluster's total query count; the suffix format
    keeps one group per request with the prefix blocks removed.
    """
    kv = mapping.kv
    bc = kv.block_size
    n_req = mapping.num_groups

    claimed = np.zeros(n_req, dtype=bool)
    prefix_lens = np.zeros(n_req, dtype=np.int64)
    live_clusters: List[Tuple[PrefixCluster, int]] = []
    for cl in clusters:
        aligned = (cl.prefix_len // bc) * bc
        if aligned < min_prefix_blocks * bc or len(cl.requests) < 2:
            continue
        for r in cl.requests:
            if not 0 <= r < n_req:
                raise ValueError(f"cluster request {r} out of range")
            if claimed[r]:
                raise ValueError(f"request {r} claimed by two clusters")
            if kv.kv_lens[r] < aligned:
                raise ValueError(
                    f"request {r} has kv_len {kv.kv_lens[r]} < prefix {aligned}"
                )
            claimed[r] = True
            prefix_lens[r] = aligned
        # All members must actually share the prefix blocks.
        first_blocks = kv.group_blocks(cl.requests[0])[: aligned // bc]
        for r in cl.requests[1:]:
            if not np.array_equal(kv.group_blocks(r)[: aligned // bc], first_blocks):
                raise ValueError(
                    f"request {r} does not share the first {aligned} KV slots "
                    f"with request {cl.requests[0]}"
                )
        live_clusters.append((cl, aligned))

    if not live_clusters:
        return ComposableFormat.single(mapping)

    # -- prefix format: one group per cluster, spanning all its queries ----
    p_qo = [0]
    p_indptr = [0]
    p_indices: List[int] = []
    p_kv_lens: List[int] = []
    p_kv_pos: List[int] = []
    p_q_pos: List[int] = []
    max_cluster_qo = 0
    for cl, aligned in live_clusters:
        r0, r_last = cl.requests[0], cl.requests[-1]
        q_span = int(mapping.qo_indptr[r_last + 1] - mapping.qo_indptr[r0])
        max_cluster_qo = max(max_cluster_qo, q_span)
        p_qo.append(p_qo[-1] + q_span)
        blocks = kv.group_blocks(r0)[: aligned // bc]
        p_indices.extend(blocks.tolist())
        p_indptr.append(p_indptr[-1] + blocks.size)
        p_kv_lens.append(aligned)
        p_kv_pos.append(int(mapping.kv_pos_offset[r0]))
        # Queries all sit at positions >= prefix, so causal never masks the
        # prefix; record the smallest member's query offset for variants that
        # need positions (RoPE etc. use kv positions, which are exact).
        p_q_pos.append(int(mapping.q_pos_offset[r0]))
    # Prefix groups must be contiguous in the packed query space: verify.
    covered = 0
    for cl, _ in live_clusters:
        if int(mapping.qo_indptr[cl.requests[0]]) < covered:
            raise ValueError("clusters overlap in packed query space")
        covered = int(mapping.qo_indptr[cl.requests[-1] + 1])

    # The prefix mapping's query groups are sub-ranges of the packed query
    # tensor; record each group's absolute start row.
    p_q_starts = np.asarray(
        [int(mapping.qo_indptr[cl.requests[0]]) for cl, _ in live_clusters], dtype=np.int64
    )
    prefix_mapping = AttentionMapping(
        qo_indptr=np.asarray(p_qo, dtype=np.int64),
        kv=BlockSparseKV(
            bc,
            kv.pool_blocks,
            np.asarray(p_indptr, dtype=np.int64),
            np.asarray(p_indices, dtype=np.int64),
            np.asarray(p_kv_lens, dtype=np.int64),
        ),
        causal=False,
        q_pos_offset=np.asarray(p_q_pos, dtype=np.int64),
        kv_pos_offset=np.asarray(p_kv_pos, dtype=np.int64),
        block_row_size=max_cluster_qo,
        q_row_starts=p_q_starts,
        label="prefix",
    )

    # -- suffix format: one group per request, prefix blocks removed -------
    s_indptr = [0]
    s_indices: List[int] = []
    s_kv_lens = kv.kv_lens - prefix_lens
    for r in range(n_req):
        skip = int(prefix_lens[r]) // bc
        blocks = kv.group_blocks(r)[skip:]
        s_indices.extend(blocks.tolist())
        s_indptr.append(s_indptr[-1] + blocks.size)
    suffix_mapping = AttentionMapping(
        qo_indptr=mapping.qo_indptr.copy(),
        kv=BlockSparseKV(
            bc,
            kv.pool_blocks,
            np.asarray(s_indptr, dtype=np.int64),
            np.asarray(s_indices, dtype=np.int64),
            s_kv_lens,
        ),
        causal=mapping.causal,
        q_pos_offset=mapping.q_pos_offset.copy(),
        kv_pos_offset=mapping.kv_pos_offset + prefix_lens,
        block_row_size=mapping.block_row_size,
        label="suffix",
    )
    return ComposableFormat([prefix_mapping, suffix_mapping])


def decompose_multi_level(
    mapping: AttentionMapping,
    levels: Sequence[Sequence[PrefixCluster]],
    min_prefix_blocks: int = 1,
) -> ComposableFormat:
    """Multi-level shared-prefix decomposition (paper §5.1: "multi-level,
    multiple-prefix decoding with unified page table management").

    ``levels`` lists cluster sets from outermost to innermost — e.g. a
    system prompt shared by every request, then per-request fork groups.
    Prefix lengths are *absolute* (from each sequence's start); each level
    peels its prefix into its own large-``B_r`` format and the next level
    decomposes the remaining suffix.  Partial states from every format
    merge with ``⊕`` as usual.
    """
    formats: List[AttentionMapping] = []
    current = mapping
    peeled = np.zeros(mapping.num_groups, dtype=np.int64)
    for depth, clusters in enumerate(levels):
        rel_clusters = []
        for cl in clusters:
            peels = peeled[list(cl.requests)]
            if np.any(peels != peels[0]):
                raise ValueError(
                    f"level {depth}: cluster {cl.requests} members have "
                    f"unequal already-peeled prefixes {peels.tolist()}"
                )
            rel = cl.prefix_len - int(peels[0])
            if rel <= 0:
                raise ValueError(
                    f"level {depth}: cluster prefix {cl.prefix_len} does not "
                    f"extend past the {int(peels[0])} tokens peeled by outer levels"
                )
            rel_clusters.append(PrefixCluster(cl.requests, rel))
        comp = decompose_shared_prefix(current, rel_clusters, min_prefix_blocks)
        if len(comp) == 1:
            continue
        prefix_fmt, suffix_fmt = comp.mappings
        prefix_fmt.label = f"prefix_l{depth}"
        formats.append(prefix_fmt)
        peeled += np.asarray(suffix_fmt.kv_pos_offset) - np.asarray(current.kv_pos_offset)
        current = suffix_fmt
    formats.append(current)
    return ComposableFormat(formats)


def detect_shared_prefixes(
    kv: BlockSparseKV, min_prefix_blocks: int = 1, min_cluster_size: int = 2
) -> List[PrefixCluster]:
    """Find runs of consecutive groups sharing leading KV blocks.

    A lightweight stand-in for the radix-tree knowledge a serving framework
    would provide; used when only the page table is available.
    """
    clusters: List[PrefixCluster] = []
    n = kv.num_groups
    r = 0
    while r < n - 1:
        base = kv.group_blocks(r)
        # Longest common block prefix with the next group.
        def common(a: np.ndarray, b: np.ndarray) -> int:
            m = min(a.size, b.size)
            neq = np.nonzero(a[:m] != b[:m])[0]
            return int(neq[0]) if neq.size else m

        run_end = r
        run_common = base.size
        while run_end + 1 < n:
            c = common(base, kv.group_blocks(run_end + 1))
            if min(run_common, c) < min_prefix_blocks:
                break
            run_common = min(run_common, c)
            run_end += 1
        size = run_end - r + 1
        if size >= min_cluster_size and run_common >= min_prefix_blocks:
            # The shared prefix cannot extend past any member's full KV
            # (a query must keep at least its own last token in the suffix
            # when causal); prefix_len in tokens, block-aligned.
            max_pref = min(int(kv.kv_lens[g]) for g in range(r, run_end + 1))
            prefix_len = min(run_common * kv.block_size, max_pref)
            prefix_len = (prefix_len // kv.block_size) * kv.block_size
            if prefix_len >= min_prefix_blocks * kv.block_size:
                clusters.append(PrefixCluster(tuple(range(r, run_end + 1)), prefix_len))
            r = run_end + 1
        else:
            r += 1
    return clusters
