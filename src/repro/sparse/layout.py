"""Kernel-facing block-sparse KV gather layouts.

FlashInfer kernels consume the page-table-like triple
``(qo_indptr, kv_indptr, kv_indices [, kv_lens])``: queries are grouped, and
each group gathers an ordered list of KV *blocks* from the global pool
(paper §3.1.1).  :class:`BlockSparseKV` holds the KV side of that triple;
:class:`AttentionMapping` pairs it with the query grouping plus the masking
metadata needed for causal attention, and is the unit a *composable format*
stack is made of (§3.1.2): the standard batch case is one mapping whose
groups are requests; a shared-prefix decomposition is one mapping whose
single group spans many requests' queries (large ``B_r``) plus one mapping
for the unique suffixes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.sparse.bsr import ceil_div


class BlockSparseKV:
    """Per-group block-compressed KV gather structure (generalized page table).

    Group ``g`` gathers blocks ``indices[indptr[g]:indptr[g+1]]`` from a pool
    of ``pool_blocks`` blocks of ``block_size`` (= ``B_c``) slots each, for a
    total of ``kv_lens[g]`` valid slots (the final block may be partial —
    FlashInfer's ``last_page_len``).
    """

    __slots__ = ("block_size", "pool_blocks", "indptr", "indices", "kv_lens")

    def __init__(
        self,
        block_size: int,
        pool_blocks: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        kv_lens: np.ndarray,
    ):
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        kv_lens = np.asarray(kv_lens, dtype=np.int64)
        if indptr.ndim != 1 or indptr.size < 1 or indptr[0] != 0:
            raise ValueError("indptr must be 1-D, non-empty, starting at 0")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if indptr[-1] != indices.size:
            raise ValueError(f"indptr[-1] ({indptr[-1]}) != len(indices) ({indices.size})")
        if indices.size and (indices.min() < 0 or indices.max() >= pool_blocks):
            raise ValueError("block indices out of pool range")
        if kv_lens.shape != (indptr.size - 1,):
            raise ValueError(f"kv_lens must have shape ({indptr.size - 1},)")
        nblocks = np.diff(indptr)
        expected = np.where(kv_lens > 0, -(-kv_lens // block_size), 0)
        if np.any(expected != nblocks):
            bad = int(np.nonzero(expected != nblocks)[0][0])
            raise ValueError(
                f"group {bad}: kv_lens={kv_lens[bad]} implies {expected[bad]} "
                f"blocks of size {block_size} but indptr gives {nblocks[bad]}"
            )
        self.block_size = int(block_size)
        self.pool_blocks = int(pool_blocks)
        self.indptr = indptr
        self.indices = indices
        self.kv_lens = kv_lens

    @property
    def num_groups(self) -> int:
        return self.indptr.size - 1

    def group_blocks(self, g: int) -> np.ndarray:
        """Ordered block ids gathered by group ``g``."""
        return self.indices[self.indptr[g] : self.indptr[g + 1]]

    def slot_indices(self, g: int, start: int = 0, stop: Optional[int] = None) -> np.ndarray:
        """Element slot ids (into the pool) for group ``g``, range ``[start, stop)``.

        This is the gather list the kernel materializes into shared memory
        (paper §3.2.1, Figure 4).  ``start``/``stop`` select a KV chunk, which
        is how the load-balancing scheduler splits long KVs.
        """
        bc = self.block_size
        total = int(self.kv_lens[g])
        stop = total if stop is None else min(stop, total)
        if start < 0 or start > stop:
            raise ValueError(f"invalid chunk range [{start}, {stop})")
        if start == stop:
            return np.empty(0, dtype=np.int64)
        b0, b1 = start // bc, ceil_div(stop, bc)
        blocks = self.group_blocks(g)[b0:b1]
        slots = (blocks[:, None] * bc + np.arange(bc)[None, :]).reshape(-1)
        return slots[start - b0 * bc : stop - b0 * bc]

    @classmethod
    def from_slot_lists(
        cls, slot_lists: Sequence[np.ndarray], block_size: int, pool_blocks: int
    ) -> "BlockSparseKV":
        """Build from explicit per-group slot lists (must be block-aligned)."""
        indices: List[int] = []
        indptr = np.zeros(len(slot_lists) + 1, dtype=np.int64)
        kv_lens = np.zeros(len(slot_lists), dtype=np.int64)
        for g, slots in enumerate(slot_lists):
            slots = np.asarray(slots, dtype=np.int64)
            kv_lens[g] = slots.size
            nblocks = ceil_div(int(slots.size), block_size) if slots.size else 0
            for b in range(nblocks):
                seg = slots[b * block_size : (b + 1) * block_size]
                base = seg[0]
                if base % block_size != 0:
                    raise ValueError(f"group {g} block {b} not aligned to block_size")
                if not np.array_equal(seg, base + np.arange(seg.size)):
                    raise ValueError(f"group {g} block {b} slots not contiguous")
                indices.append(int(base // block_size))
            indptr[g + 1] = indptr[g] + nblocks
        return cls(block_size, pool_blocks, indptr, np.asarray(indices, dtype=np.int64), kv_lens)

    def __repr__(self) -> str:
        return (
            f"BlockSparseKV(groups={self.num_groups}, block_size={self.block_size}, "
            f"pool_blocks={self.pool_blocks}, total_kv={int(self.kv_lens.sum())})"
        )


@dataclass
class AttentionMapping:
    """One format of a (possibly composable) attention computation.

    Attributes
    ----------
    qo_indptr:
        Query grouping: group ``g`` owns packed query rows
        ``[qo_indptr[g], qo_indptr[g+1])``.
    kv:
        KV gather structure with ``kv.num_groups == len(qo_indptr) - 1``.
    causal:
        Whether the causal mask applies within this mapping.
    q_pos_offset / kv_pos_offset:
        Absolute sequence position of group ``g``'s first query / first KV
        slot.  Query ``i`` of group ``g`` has position ``q_pos_offset[g]+i``;
        KV element ``j`` (in gather order) has ``kv_pos_offset[g]+j``.  Used
        by causal and position-dependent variants (RoPE, ALiBi, windows)
        so that a prefix/suffix split preserves absolute positions.
    block_row_size:
        The ``B_r`` hint for this format — how many query rows the kernel
        should tile together.  Shared-prefix formats use a large ``B_r`` so
        all sharing queries reuse one shared-memory load of the prefix.
    q_row_starts:
        Absolute start row of each group in the *packed* query/output
        tensor.  Defaults to ``qo_indptr[:-1]`` (groups tile the packed
        tensor); a prefix format whose groups are sub-ranges of the packed
        tensor sets these explicitly.
    label:
        Human-readable tag for diagnostics ("batch", "prefix", "suffix"...).
    """

    qo_indptr: np.ndarray
    kv: BlockSparseKV
    causal: bool = False
    q_pos_offset: Optional[np.ndarray] = None
    kv_pos_offset: Optional[np.ndarray] = None
    block_row_size: Optional[int] = None
    q_row_starts: Optional[np.ndarray] = None
    label: str = "batch"

    def __post_init__(self) -> None:
        self.qo_indptr = np.asarray(self.qo_indptr, dtype=np.int64)
        if self.qo_indptr.ndim != 1 or self.qo_indptr.size < 1 or self.qo_indptr[0] != 0:
            raise ValueError("qo_indptr must be 1-D starting at 0")
        if np.any(np.diff(self.qo_indptr) < 0):
            raise ValueError("qo_indptr must be non-decreasing")
        n = self.num_groups
        if self.kv.num_groups != n:
            raise ValueError(
                f"kv has {self.kv.num_groups} groups but qo_indptr defines {n}"
            )
        if self.q_pos_offset is None:
            # Default decode/prefill convention: the g-th group's queries are
            # the *last* qo_len positions of its kv sequence.
            self.q_pos_offset = self.kv.kv_lens - self.qo_lens
        else:
            self.q_pos_offset = np.asarray(self.q_pos_offset, dtype=np.int64)
            if self.q_pos_offset.shape != (n,):
                raise ValueError(f"q_pos_offset must have shape ({n},)")
        if self.kv_pos_offset is None:
            self.kv_pos_offset = np.zeros(n, dtype=np.int64)
        else:
            self.kv_pos_offset = np.asarray(self.kv_pos_offset, dtype=np.int64)
            if self.kv_pos_offset.shape != (n,):
                raise ValueError(f"kv_pos_offset must have shape ({n},)")
        if self.q_row_starts is None:
            self.q_row_starts = self.qo_indptr[:-1].copy()
        else:
            self.q_row_starts = np.asarray(self.q_row_starts, dtype=np.int64)
            if self.q_row_starts.shape != (n,):
                raise ValueError(f"q_row_starts must have shape ({n},)")

    @property
    def num_groups(self) -> int:
        return self.qo_indptr.size - 1

    @property
    def total_qo(self) -> int:
        return int(self.qo_indptr[-1])

    @property
    def qo_lens(self) -> np.ndarray:
        return np.diff(self.qo_indptr)

    def __repr__(self) -> str:
        return (
            f"AttentionMapping(label={self.label!r}, groups={self.num_groups}, "
            f"total_qo={self.total_qo}, causal={self.causal}, "
            f"B_c={self.kv.block_size}, B_r={self.block_row_size})"
        )
