"""Conversions between KV-cache structures and sparse formats.

These functions realize the paper's unification claim (§3.1.1, Figure 2):
page tables, dense masks and CSR structures all lower to the same BSR /
block-sparse gather representation consumed by the kernels.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.sparse.bsr import BSRMatrix, ceil_div
from repro.sparse.csr import CSRMatrix
from repro.sparse.layout import AttentionMapping, BlockSparseKV


def kv_from_page_table(
    page_lists: Sequence[np.ndarray],
    kv_lens: Sequence[int],
    page_size: int,
    pool_pages: int,
) -> BlockSparseKV:
    """Wrap a per-request page table as a :class:`BlockSparseKV`.

    ``page_lists[r]`` are the ordered page ids of request ``r``;
    ``kv_lens[r]`` is its token count (the last page may be partial).
    """
    kv_lens = np.asarray(kv_lens, dtype=np.int64)
    if len(page_lists) != kv_lens.size:
        raise ValueError("page_lists and kv_lens must have the same length")
    indptr = np.zeros(len(page_lists) + 1, dtype=np.int64)
    indices: List[int] = []
    for r, pages in enumerate(page_lists):
        pages = np.asarray(pages, dtype=np.int64)
        need = ceil_div(int(kv_lens[r]), page_size) if kv_lens[r] else 0
        if pages.size != need:
            raise ValueError(
                f"request {r}: kv_len={kv_lens[r]} needs {need} pages of size "
                f"{page_size}, got {pages.size}"
            )
        indices.extend(pages.tolist())
        indptr[r + 1] = indptr[r] + pages.size
    return BlockSparseKV(
        page_size, pool_pages, indptr, np.asarray(indices, dtype=np.int64), kv_lens
    )


def bsr_from_page_table(
    page_lists: Sequence[np.ndarray],
    kv_lens: Sequence[int],
    page_size: int,
    pool_pages: int,
    queries_per_request: int,
) -> BSRMatrix:
    """Render a page table as the BSR matrix of paper Figure 2.

    Rows are queries (``queries_per_request`` per request, the ``B_r``),
    columns are all pool slots; non-zero blocks mark the pages each request's
    queries attend to.
    """
    kv = kv_from_page_table(page_lists, kv_lens, page_size, pool_pages)
    n_req = kv.num_groups
    shape = (n_req * queries_per_request, pool_pages * page_size)
    return BSRMatrix(
        shape,
        (queries_per_request, page_size),
        kv.indptr,
        kv.indices,
        kv.kv_lens,
    )


def bsr_from_dense_mask(mask: np.ndarray, block_size: Tuple[int, int]) -> BSRMatrix:
    """Alias for :meth:`BSRMatrix.from_dense_mask`."""
    return BSRMatrix.from_dense_mask(mask, block_size)


def bsr_to_dense_mask(bsr: BSRMatrix) -> np.ndarray:
    """Alias for :meth:`BSRMatrix.to_dense_mask`."""
    return bsr.to_dense_mask()


def csr_to_bsr(csr: CSRMatrix, block_size: Tuple[int, int]) -> BSRMatrix:
    """Regroup CSR structure into BSR blocks (must be exactly representable)."""
    return BSRMatrix.from_dense_mask(csr.to_dense_mask(), block_size)


def mapping_from_bsr(bsr: BSRMatrix, causal: bool = False) -> AttentionMapping:
    """Lower a uniform BSR adjacency to a kernel-facing mapping.

    Each BSR block row becomes one query group gathering its blocks'
    slots — the path used for custom block-sparse attention masks
    (tree attention, Quest-style importance masks).
    """
    n = bsr.n_block_rows
    qo_indptr = np.zeros(n + 1, dtype=np.int64)
    for i in range(n):
        r0, r1 = bsr.block_row_rows(i)
        qo_indptr[i + 1] = qo_indptr[i] + (r1 - r0)
    kv = BlockSparseKV(
        bsr.block_size[1],
        bsr.n_block_cols,
        bsr.indptr,
        bsr.indices,
        bsr.row_kv_lens,
    )
    return AttentionMapping(
        qo_indptr,
        kv,
        causal=causal,
        block_row_size=bsr.block_size[0],
        label="bsr",
    )
