"""Sparse storage formats used by the attention engine.

FlashInfer's central observation (paper §3.1) is that the many KV-cache
layouts used in LLM serving — page tables, radix trees, tree-attention masks,
importance masks — are all instances of one structure: a block-sparse row
(BSR) matrix whose rows are query positions and whose columns are KV-cache
slots.  This subpackage provides that structure plus the ragged tensors used
for query/output packing, the kernel-facing gather layouts, and the
composable multi-format decomposition used for shared prefixes.
"""

from repro.sparse.ragged import RaggedTensor
from repro.sparse.csr import CSRMatrix
from repro.sparse.bsr import BSRMatrix
from repro.sparse.layout import AttentionMapping, BlockSparseKV
from repro.sparse.conversions import (
    bsr_from_dense_mask,
    bsr_from_page_table,
    bsr_to_dense_mask,
    csr_to_bsr,
    kv_from_page_table,
    mapping_from_bsr,
)
from repro.sparse.composable import (
    ComposableFormat,
    PrefixCluster,
    decompose_multi_level,
    decompose_shared_prefix,
    detect_shared_prefixes,
)
from repro.sparse.quest import PageSummaryStore, quest_mapping, select_pages

__all__ = [
    "RaggedTensor",
    "CSRMatrix",
    "BSRMatrix",
    "AttentionMapping",
    "BlockSparseKV",
    "bsr_from_dense_mask",
    "bsr_from_page_table",
    "bsr_to_dense_mask",
    "csr_to_bsr",
    "kv_from_page_table",
    "mapping_from_bsr",
    "ComposableFormat",
    "PrefixCluster",
    "decompose_multi_level",
    "decompose_shared_prefix",
    "detect_shared_prefixes",
    "PageSummaryStore",
    "quest_mapping",
    "select_pages",
]
