"""Quest-style query-aware sparse attention (paper §5.4).

Quest (Tang et al. 2024) keeps per-page key metadata (element-wise min and
max) and, at each decode step, scores every page with an *upper bound* on
its attention logits, attending only the top-``page_budget`` pages.  The
paper cites this as the kind of dynamic KV-cache sparsity "where
FlashInfer's block sparse kernel remains effective": the selected pages
simply become the step's block-sparse gather structure — no kernel changes.

This module provides the metadata (:class:`PageSummaryStore`), the bound
scoring, and :func:`quest_mapping`, which turns a paged layout plus the
current queries into a pruned :class:`~repro.sparse.AttentionMapping`.

Simplifications vs the original system (documented): pages are scored with
query-head-summed bounds (one page set per request rather than per head),
and attention sinks / the most recent pages are always kept.  Selected
pages are gappy in position space, so the pruned mapping is non-causal —
valid for decode, where the query is the newest position and every
selected key lies in its past.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.sparse.layout import AttentionMapping, BlockSparseKV


class PageSummaryStore:
    """Element-wise min/max of the keys in every page of a pool.

    Maintained incrementally as tokens append; ``page_budget`` selection
    reads only these summaries (2 vectors per page per KV head), which is
    the metadata footprint Quest trades for pruned attention.
    """

    def __init__(self, num_pages: int, page_size: int, num_kv_heads: int, head_dim: int):
        self.page_size = page_size
        self.num_kv_heads = num_kv_heads
        self.head_dim = head_dim
        self.k_min = np.full((num_pages, num_kv_heads, head_dim), np.inf, dtype=np.float32)
        self.k_max = np.full((num_pages, num_kv_heads, head_dim), -np.inf, dtype=np.float32)
        self._count = np.zeros(num_pages, dtype=np.int64)

    def update(self, page: int, k_new: np.ndarray) -> None:
        """Fold new key rows ``(n, H_kv, D)`` of ``page`` into its summary."""
        k_new = np.asarray(k_new, dtype=np.float32)
        if k_new.ndim != 3 or k_new.shape[1:] != (self.num_kv_heads, self.head_dim):
            raise ValueError(
                f"k_new must be (n, {self.num_kv_heads}, {self.head_dim}), got {k_new.shape}"
            )
        if self._count[page] + k_new.shape[0] > self.page_size:
            raise ValueError(f"page {page} would exceed page_size")
        self.k_min[page] = np.minimum(self.k_min[page], k_new.min(axis=0))
        self.k_max[page] = np.maximum(self.k_max[page], k_new.max(axis=0))
        self._count[page] += k_new.shape[0]

    def rebuild_from_pool(self, k_pool: np.ndarray, pages: Sequence[int], kv_len: int) -> None:
        """Recompute summaries for a request's ``pages`` from the pool."""
        for i, page in enumerate(pages):
            s0 = page * self.page_size
            valid = min(self.page_size, kv_len - i * self.page_size)
            if valid <= 0:
                break
            seg = np.asarray(k_pool[s0 : s0 + valid], dtype=np.float32)
            self.k_min[page] = seg.min(axis=0)
            self.k_max[page] = seg.max(axis=0)
            self._count[page] = valid

    def score_bound(self, q: np.ndarray, pages: np.ndarray) -> np.ndarray:
        """Upper bound of ``max_k q·k`` per page, summed over query heads.

        For each dimension the maximizing key coordinate is ``k_max`` when
        ``q_d > 0`` and ``k_min`` otherwise — Quest's criticality estimate.
        ``q``: ``(H_qo, D)``; returns ``(len(pages),)``.
        """
        q = np.asarray(q, dtype=np.float32)
        h_qo = q.shape[0]
        g = h_qo // self.num_kv_heads
        kv_head_of_q = np.arange(h_qo) // g
        kmin = self.k_min[pages][:, kv_head_of_q, :]  # (P, H_qo, D)
        kmax = self.k_max[pages][:, kv_head_of_q, :]
        contrib = np.maximum(q[None] * kmin, q[None] * kmax)
        return contrib.sum(axis=(1, 2))


def select_pages(
    q: np.ndarray,
    pages: np.ndarray,
    store: PageSummaryStore,
    page_budget: int,
    num_sink_pages: int = 1,
    num_recent_pages: int = 1,
) -> np.ndarray:
    """Indices (into ``pages``) of the pages one request attends this step.

    Always keeps the first ``num_sink_pages`` and last ``num_recent_pages``
    pages; fills the remaining budget with the highest-bound pages.
    Returned indices are sorted (gather order = position order).
    """
    n = len(pages)
    if page_budget >= n:
        return np.arange(n)
    keep = set(range(min(num_sink_pages, n)))
    keep.update(range(max(n - num_recent_pages, 0), n))
    free = page_budget - len(keep)
    if free > 0:
        candidates = np.asarray([i for i in range(n) if i not in keep])
        scores = store.score_bound(q, pages[candidates])
        top = candidates[np.argsort(-scores, kind="stable")[:free]]
        keep.update(int(i) for i in top)
    return np.asarray(sorted(keep), dtype=np.int64)


def quest_mapping(
    kv: BlockSparseKV,
    q: np.ndarray,
    store: PageSummaryStore,
    page_budget: int,
    num_sink_pages: int = 1,
    num_recent_pages: int = 1,
) -> AttentionMapping:
    """Prune a decode layout to each request's top-``page_budget`` pages.

    ``kv`` is the full page table for the batch (one group per request);
    ``q`` is the decode query tensor ``(batch, H_qo, D)``.  The pruned
    mapping keeps exact KV lengths for partial last pages and marks itself
    non-causal (every selected key precedes the query).
    """
    bc = kv.block_size
    batch = kv.num_groups
    if q.shape[0] != batch:
        raise ValueError(f"q has {q.shape[0]} rows for {batch} requests")
    indptr = [0]
    indices: List[int] = []
    kv_lens = np.zeros(batch, dtype=np.int64)
    for r in range(batch):
        pages = kv.group_blocks(r)
        total = int(kv.kv_lens[r])
        sel = select_pages(q[r], pages, store, page_budget,
                           num_sink_pages, num_recent_pages)
        chosen = pages[sel]
        # Only the final (most recent) page may be partial.
        last_valid = total - (len(pages) - 1) * bc
        length = (len(chosen) - 1) * bc + (
            last_valid if len(pages) - 1 in sel else bc
        )
        indices.extend(int(p) for p in chosen)
        indptr.append(indptr[-1] + len(chosen))
        kv_lens[r] = length
    pruned = BlockSparseKV(
        bc, kv.pool_blocks, np.asarray(indptr, dtype=np.int64),
        np.asarray(indices, dtype=np.int64), kv_lens,
    )
    return AttentionMapping(
        np.arange(batch + 1, dtype=np.int64),
        pruned,
        causal=False,
        q_pos_offset=kv.kv_lens - 1,  # true absolute query positions
        label="quest",
    )
