"""Compressed Sparse Row matrices (structure-only or with data).

CSR is the degenerate BSR with block size ``(1, 1)``; it is kept as a
separate, simpler type because the KV-cache managers naturally emit CSR
structure (one row of KV-slot indices per request) which is then regrouped
into BSR blocks by :func:`repro.sparse.conversions.csr_to_bsr`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


class CSRMatrix:
    """CSR structure over a logical ``(num_rows, num_cols)`` matrix.

    ``indices[indptr[i]:indptr[i+1]]`` are the non-zero column ids of row
    ``i``.  ``data`` is optional (attention only needs structure).
    """

    __slots__ = ("shape", "indptr", "indices", "data")

    def __init__(
        self,
        shape: Tuple[int, int],
        indptr: np.ndarray,
        indices: np.ndarray,
        data: Optional[np.ndarray] = None,
    ):
        num_rows, num_cols = shape
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        if indptr.shape != (num_rows + 1,):
            raise ValueError(f"indptr must have shape ({num_rows + 1},), got {indptr.shape}")
        if indptr[0] != 0 or np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must start at 0 and be non-decreasing")
        if indptr[-1] != indices.size:
            raise ValueError(f"indptr[-1] ({indptr[-1]}) != len(indices) ({indices.size})")
        if indices.size and (indices.min() < 0 or indices.max() >= num_cols):
            raise ValueError("column indices out of range")
        if data is not None and np.asarray(data).shape[0] != indices.size:
            raise ValueError("data must align with indices")
        self.shape = (int(num_rows), int(num_cols))
        self.indptr = indptr
        self.indices = indices
        self.data = None if data is None else np.asarray(data)

    @property
    def nnz(self) -> int:
        return int(self.indices.size)

    def row_indices(self, i: int) -> np.ndarray:
        """Non-zero column ids of row ``i``."""
        return self.indices[self.indptr[i] : self.indptr[i + 1]]

    def to_dense_mask(self) -> np.ndarray:
        """Boolean dense mask of the structure."""
        mask = np.zeros(self.shape, dtype=bool)
        for i in range(self.shape[0]):
            mask[i, self.row_indices(i)] = True
        return mask

    @classmethod
    def from_dense_mask(cls, mask: np.ndarray) -> "CSRMatrix":
        mask = np.asarray(mask, dtype=bool)
        if mask.ndim != 2:
            raise ValueError("mask must be 2-D")
        indptr = np.zeros(mask.shape[0] + 1, dtype=np.int64)
        np.cumsum(mask.sum(axis=1), out=indptr[1:])
        indices = np.nonzero(mask)[1]
        return cls(mask.shape, indptr, indices)

    def __repr__(self) -> str:
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"
