"""Block-Sparse Row (BSR) matrices with arbitrary block sizes.

In FlashInfer a BSR matrix is the *attention adjacency*: logical rows are
packed query positions, logical columns are KV-cache slots in the global
pool, and a non-zero block ``(i, j)`` means query tile ``i`` attends to KV
block ``j`` (paper §3.1.1, Figure 2).  The row block size ``B_r`` matches the
kernel's query tile size; the column block size ``B_c`` is chosen by the
KV-cache manager (the page size, or 1 for vector-sparse layouts).

Unlike textbook BSR, the last non-zero block of a row may be a *column
prefix* of a block (a partially-filled last page); ``row_kv_lens`` records
each block row's total valid KV length.  All rows inside one block row share
the same structure — finer-grained masking (e.g. causal) is applied inside
the attention kernel via ``LogitsMask``, never via BSR structure.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def ceil_div(a: int, b: int) -> int:
    return -(-a // b)


class BSRMatrix:
    """BSR structure over a logical ``(num_rows, num_cols)`` boolean matrix.

    Parameters
    ----------
    shape:
        ``(num_rows, num_cols)`` in element coordinates.
    block_size:
        ``(B_r, B_c)``.  Any positive sizes are supported (paper §2.3); the
        last block row/column may be partial if shape is not divisible.
    indptr:
        Shape ``(n_block_rows + 1,)`` offsets into ``indices``.
    indices:
        Column-block ids of the non-zero blocks, in gather order per row.
    row_kv_lens:
        Optional per-block-row total valid KV length (elements).  Defaults to
        every non-zero block being full (clipped at ``num_cols`` for the last
        block column).  Must satisfy
        ``nnz_blocks(i) == ceil(row_kv_lens[i] / B_c)`` when given.
    """

    __slots__ = ("shape", "block_size", "indptr", "indices", "row_kv_lens")

    def __init__(
        self,
        shape: Tuple[int, int],
        block_size: Tuple[int, int],
        indptr: np.ndarray,
        indices: np.ndarray,
        row_kv_lens: Optional[np.ndarray] = None,
    ):
        num_rows, num_cols = int(shape[0]), int(shape[1])
        br, bc = int(block_size[0]), int(block_size[1])
        if br <= 0 or bc <= 0:
            raise ValueError(f"block_size must be positive, got {(br, bc)}")
        if num_rows < 0 or num_cols < 0:
            raise ValueError(f"shape must be non-negative, got {shape}")
        n_brows = ceil_div(num_rows, br) if num_rows else 0
        n_bcols = ceil_div(num_cols, bc) if num_cols else 0

        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        if indptr.shape != (n_brows + 1,):
            raise ValueError(f"indptr must have shape ({n_brows + 1},), got {indptr.shape}")
        if indptr[0] != 0 or np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must start at 0 and be non-decreasing")
        if indptr[-1] != indices.size:
            raise ValueError(f"indptr[-1] ({indptr[-1]}) != len(indices) ({indices.size})")
        if indices.size and (indices.min() < 0 or indices.max() >= n_bcols):
            raise ValueError("block column indices out of range")

        self.shape = (num_rows, num_cols)
        self.block_size = (br, bc)
        self.indptr = indptr
        self.indices = indices

        nnz_per_row = np.diff(indptr)
        if row_kv_lens is None:
            # Full blocks; the physical last block column may be short.
            row_kv_lens = np.empty(n_brows, dtype=np.int64)
            for i in range(n_brows):
                blocks = indices[indptr[i] : indptr[i + 1]]
                total = blocks.size * bc
                # A block touching the ragged matrix edge holds fewer slots.
                total -= np.count_nonzero(blocks == n_bcols - 1) * (n_bcols * bc - num_cols)
                row_kv_lens[i] = total
        else:
            row_kv_lens = np.asarray(row_kv_lens, dtype=np.int64)
            if row_kv_lens.shape != (n_brows,):
                raise ValueError(
                    f"row_kv_lens must have shape ({n_brows},), got {row_kv_lens.shape}"
                )
            expected_blocks = np.where(row_kv_lens > 0, -(-row_kv_lens // bc), 0)
            if np.any(expected_blocks != nnz_per_row):
                bad = int(np.nonzero(expected_blocks != nnz_per_row)[0][0])
                raise ValueError(
                    f"row {bad}: row_kv_lens={row_kv_lens[bad]} implies "
                    f"{expected_blocks[bad]} blocks but indptr gives {nnz_per_row[bad]}"
                )
        self.row_kv_lens = row_kv_lens

    # -- geometry ----------------------------------------------------------

    @property
    def n_block_rows(self) -> int:
        return self.indptr.size - 1

    @property
    def n_block_cols(self) -> int:
        return ceil_div(self.shape[1], self.block_size[1]) if self.shape[1] else 0

    @property
    def nnz_blocks(self) -> int:
        return int(self.indices.size)

    def block_row_rows(self, i: int) -> Tuple[int, int]:
        """Element row range ``[start, stop)`` covered by block row ``i``."""
        br = self.block_size[0]
        return i * br, min((i + 1) * br, self.shape[0])

    def row_blocks(self, i: int) -> np.ndarray:
        """Column-block ids of block row ``i`` in gather order."""
        return self.indices[self.indptr[i] : self.indptr[i + 1]]

    def row_kv_indices(self, i: int) -> np.ndarray:
        """Element column indices gathered by block row ``i``.

        Concatenates each non-zero block's slot range; the final block is
        trimmed to ``row_kv_lens[i]``.  This is exactly the gather the kernel
        performs from global memory into contiguous shared memory (§3.2.1).
        """
        bc = self.block_size[1]
        blocks = self.row_blocks(i)
        if blocks.size == 0:
            return np.empty(0, dtype=np.int64)
        cols = (blocks[:, None] * bc + np.arange(bc)[None, :]).reshape(-1)
        return cols[: self.row_kv_lens[i]]

    # -- dense round-trip ---------------------------------------------------

    def to_dense_mask(self) -> np.ndarray:
        """Boolean dense mask (all rows in a block row share structure)."""
        mask = np.zeros(self.shape, dtype=bool)
        for i in range(self.n_block_rows):
            r0, r1 = self.block_row_rows(i)
            cols = self.row_kv_indices(i)
            cols = cols[cols < self.shape[1]]
            mask[r0:r1, cols] = True
        return mask

    @classmethod
    def from_dense_mask(
        cls, mask: np.ndarray, block_size: Tuple[int, int]
    ) -> "BSRMatrix":
        """Build BSR from a dense boolean mask.

        Requires the mask to be exactly representable: all rows within a
        block row identical, and each non-zero block either full or — for the
        block holding a row's last valid column — a column *prefix*.
        """
        mask = np.asarray(mask, dtype=bool)
        if mask.ndim != 2:
            raise ValueError("mask must be 2-D")
        num_rows, num_cols = mask.shape
        br, bc = block_size
        n_brows = ceil_div(num_rows, br) if num_rows else 0

        indptr = np.zeros(n_brows + 1, dtype=np.int64)
        all_indices = []
        row_kv_lens = np.zeros(n_brows, dtype=np.int64)
        for i in range(n_brows):
            r0, r1 = i * br, min((i + 1) * br, num_rows)
            tile = mask[r0:r1]
            if not (tile == tile[0]).all():
                raise ValueError(f"rows {r0}:{r1} differ; mask not representable with B_r={br}")
            row = tile[0]
            per_block = row.reshape(-1) if bc == 1 else None
            blocks = []
            valid = 0
            n_bcols = ceil_div(num_cols, bc)
            for j in range(n_bcols):
                seg = row[j * bc : (j + 1) * bc]
                cnt = int(seg.sum())
                if cnt == 0:
                    continue
                if not seg[:cnt].all():
                    raise ValueError(
                        f"block ({i},{j}) is not a column prefix; "
                        f"mask not representable with B_c={bc}"
                    )
                blocks.append(j)
                valid += cnt
            # Only the final gathered block may be partial.
            for k, j in enumerate(blocks[:-1]):
                seg = row[j * bc : min((j + 1) * bc, num_cols)]
                if not seg.all():
                    raise ValueError(
                        f"non-final block ({i},{j}) is partial; "
                        f"mask not representable with B_c={bc}"
                    )
            all_indices.extend(blocks)
            indptr[i + 1] = indptr[i] + len(blocks)
            row_kv_lens[i] = valid
        return cls(
            (num_rows, num_cols),
            (br, bc),
            indptr,
            np.asarray(all_indices, dtype=np.int64),
            row_kv_lens,
        )

    def __repr__(self) -> str:
        return (
            f"BSRMatrix(shape={self.shape}, block_size={self.block_size}, "
            f"nnz_blocks={self.nnz_blocks})"
        )
