"""Ragged (jagged) tensors.

Queries and outputs from a batch of variable-length requests are packed
without padding into a single array plus an ``indptr`` offset array (paper
§3.1.1).  Row ``i`` occupies ``data[indptr[i]:indptr[i+1]]``.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np


class RaggedTensor:
    """A batch of variable-length rows packed into one contiguous array.

    Parameters
    ----------
    data:
        Array of shape ``(total, ...)`` — all rows concatenated along axis 0.
    indptr:
        Int array of shape ``(num_rows + 1,)``, non-decreasing, with
        ``indptr[0] == 0`` and ``indptr[-1] == len(data)``.
    """

    __slots__ = ("data", "indptr")

    def __init__(self, data: np.ndarray, indptr: np.ndarray):
        data = np.asarray(data)
        indptr = np.asarray(indptr, dtype=np.int64)
        if indptr.ndim != 1 or indptr.size < 1:
            raise ValueError(f"indptr must be a non-empty 1-D array, got shape {indptr.shape}")
        if indptr[0] != 0:
            raise ValueError(f"indptr[0] must be 0, got {indptr[0]}")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if indptr[-1] != data.shape[0]:
            raise ValueError(
                f"indptr[-1] ({indptr[-1]}) must equal data.shape[0] ({data.shape[0]})"
            )
        self.data = data
        self.indptr = indptr

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_rows(cls, rows: Sequence[np.ndarray]) -> "RaggedTensor":
        """Pack a sequence of arrays (equal trailing dims) into one tensor."""
        rows = [np.asarray(r) for r in rows]
        if rows:
            data = np.concatenate(rows, axis=0)
        else:
            data = np.empty((0,))
        lengths = [r.shape[0] for r in rows]
        indptr = np.zeros(len(rows) + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        return cls(data, indptr)

    @classmethod
    def from_lengths(cls, data: np.ndarray, lengths: Iterable[int]) -> "RaggedTensor":
        """Build from packed data and per-row lengths."""
        lengths = np.asarray(list(lengths), dtype=np.int64)
        indptr = np.zeros(lengths.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        return cls(np.asarray(data), indptr)

    # -- accessors ---------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return self.indptr.size - 1

    @property
    def total(self) -> int:
        """Total number of packed elements along axis 0."""
        return int(self.indptr[-1])

    @property
    def row_lengths(self) -> np.ndarray:
        return np.diff(self.indptr)

    def row(self, i: int) -> np.ndarray:
        """View of row ``i`` (no copy)."""
        if not -self.num_rows <= i < self.num_rows:
            raise IndexError(f"row {i} out of range for {self.num_rows} rows")
        if i < 0:
            i += self.num_rows
        return self.data[self.indptr[i] : self.indptr[i + 1]]

    def rows(self) -> List[np.ndarray]:
        return [self.row(i) for i in range(self.num_rows)]

    def __len__(self) -> int:
        return self.num_rows

    def __iter__(self):
        return iter(self.rows())

    def __repr__(self) -> str:
        return (
            f"RaggedTensor(num_rows={self.num_rows}, total={self.total}, "
            f"item_shape={self.data.shape[1:]}, dtype={self.data.dtype})"
        )
