"""Observability: step-level tracing and profiling for the serving stack.

Usage::

    from repro.obs import StepTracer, write_chrome_trace

    tracer = StepTracer()
    engine = ServingEngine(model, backend, gpu, cfg, tracer=tracer)
    metrics = engine.run(requests)
    write_chrome_trace("trace.json", tracer.events)   # chrome://tracing

See ``docs/ARCHITECTURE.md`` ("Observability") for the event schema.
"""

from repro.obs.events import (
    FAULT_ACTIONS,
    STEP_COMPONENTS,
    STEP_KINDS,
    FaultEvent,
    KernelRecord,
    StepEvent,
    validate_event,
)
from repro.obs.export import (
    summary_table,
    to_chrome_trace,
    to_cluster_trace,
    to_csv,
    write_chrome_trace,
    write_cluster_trace,
    write_csv,
)
from repro.obs.tracer import RollingHistogram, StepTracer

__all__ = [
    "FAULT_ACTIONS",
    "STEP_COMPONENTS",
    "STEP_KINDS",
    "FaultEvent",
    "KernelRecord",
    "StepEvent",
    "validate_event",
    "RollingHistogram",
    "StepTracer",
    "summary_table",
    "to_chrome_trace",
    "to_cluster_trace",
    "to_csv",
    "write_chrome_trace",
    "write_cluster_trace",
    "write_csv",
]
