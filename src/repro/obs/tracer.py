"""The step tracer: typed event recording plus rolling statistics.

A :class:`StepTracer` is handed to :class:`repro.serving.engine.ServingEngine`
(or attached to the standalone API wrappers) and records one
:class:`~repro.obs.events.StepEvent` per engine step plus any
:class:`~repro.obs.events.KernelRecord` the attention backend surfaces.
It simultaneously folds every event into rolling counters and log-scale
latency histograms, so a long run can be summarized without retaining
gigabytes of events (``keep_events=False`` drops the event list entirely
and keeps only the rolling state).

The engine guarantees *zero* tracing overhead when no tracer is
installed: the step loop performs a single ``is None`` check and
allocates no event objects.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.obs.events import STEP_COMPONENTS, FaultEvent, KernelRecord, StepEvent


class RollingHistogram:
    """Fixed-bin log-scale histogram of positive durations (seconds).

    Bins are half-open decades split ``bins_per_decade`` ways between
    ``lo`` and ``hi``; under/overflow land in the edge bins.  O(1) per
    observation, O(bins) memory — suitable for million-step runs.
    """

    def __init__(self, lo: float = 1e-6, hi: float = 10.0, bins_per_decade: int = 4):
        self.lo = lo
        self.hi = hi
        self.bins_per_decade = bins_per_decade
        decades = math.log10(hi / lo)
        self.num_bins = int(math.ceil(decades * bins_per_decade)) + 2  # ±overflow
        self.counts = [0] * self.num_bins
        self.total = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = 0.0

    def _bin(self, value: float) -> int:
        if value < self.lo:
            return 0
        if value >= self.hi:
            return self.num_bins - 1
        return 1 + int(math.log10(value / self.lo) * self.bins_per_decade)

    def add(self, value: float) -> None:
        if value <= 0:
            return
        self.counts[self._bin(value)] += 1
        self.total += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def bin_edges(self) -> List[float]:
        """Upper edge of each bin (the first bin's lower edge is 0)."""
        edges = [self.lo]
        for i in range(1, self.num_bins - 1):
            edges.append(self.lo * 10 ** (i / self.bins_per_decade))
        edges.append(math.inf)
        return edges

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper edge of the bin holding rank q."""
        if self.total == 0:
            return float("nan")
        rank = q * self.total
        edges = self.bin_edges()
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank:
                return min(edges[i], self.max)
        return self.max

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else float("nan")


class StepTracer:
    """Records step events and kernel reports; maintains rolling stats.

    Parameters
    ----------
    capture_kernels:
        Also capture per-kernel :class:`SimReport` records from the
        attention backend (one or more per step).  Costs a few list
        allocations per step; switch off for very long runs.
    keep_events:
        Retain the full event list (needed by the Chrome-trace and CSV
        exporters).  With ``False`` only rolling counters/histograms are
        kept.
    """

    def __init__(self, capture_kernels: bool = True, keep_events: bool = True):
        self.capture_kernels = capture_kernels
        self.keep_events = keep_events
        self.events: List[StepEvent] = []
        self.kernels: List[KernelRecord] = []  #: standalone wrapper records
        # -- rolling state ----------------------------------------------------
        self.steps_by_kind: Dict[str, int] = {}
        self.component_time: Dict[str, float] = {c: 0.0 for c in STEP_COMPONENTS}
        self.idle_time = 0.0
        self.busy_time = 0.0
        self.total_prefill_tokens = 0
        self.total_decode_tokens = 0
        self.total_preemptions = 0
        self.total_prefix_hits = 0
        self.total_radix_hit_tokens = 0
        self.total_cascade_steps = 0
        self.kernel_time = 0.0
        self.num_kernels = 0
        self.step_hist = RollingHistogram()
        self.decode_step_hist = RollingHistogram()
        # -- fault/resilience state (all zero/empty outside chaos runs) ------
        self.fault_events: List[FaultEvent] = []
        self.fault_counts: Dict[str, int] = {}
        self.total_degraded_steps = 0
        # -- plan-cache state (zero unless an engine reports a PlanCache) ----
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0

    # -- recording ------------------------------------------------------------

    @property
    def num_steps(self) -> int:
        """Engine steps observed (idle gaps excluded)."""
        return sum(n for k, n in self.steps_by_kind.items() if k != "idle")

    def on_step(self, event: StepEvent) -> None:
        """Fold one step event into the rolling state (and retain it)."""
        if self.keep_events:
            self.events.append(event)
        self.steps_by_kind[event.kind] = self.steps_by_kind.get(event.kind, 0) + 1
        dur = event.duration
        if event.kind == "idle":
            self.idle_time += dur
            return
        self.busy_time += dur
        for comp, secs in event.breakdown.items():
            self.component_time[comp] = self.component_time.get(comp, 0.0) + secs
        self.total_prefill_tokens += event.num_prefill_tokens
        self.total_decode_tokens += event.num_decode_tokens
        self.total_preemptions += event.preemptions
        self.total_prefix_hits += event.prefix_cache_hits
        self.total_radix_hit_tokens += event.radix_hit_tokens
        if event.cascade_levels:
            self.total_cascade_steps += 1
        for k in event.kernels:
            self.kernel_time += k.makespan
            self.num_kernels += 1
        self.step_hist.add(dur)
        if event.kind == "decode":
            self.decode_step_hist.add(dur)
        if event.degraded:
            self.total_degraded_steps += 1

    def on_fault(self, event: FaultEvent) -> None:
        """Fold one fault/recovery event (kept when ``keep_events``)."""
        if self.keep_events:
            self.fault_events.append(event)
        key = f"{event.site}:{event.action}"
        self.fault_counts[key] = self.fault_counts.get(key, 0) + 1

    def note_plan_cache(self, hits: int, misses: int) -> None:
        """Accumulate plan-cache hit/miss deltas reported by an engine run."""
        self.plan_cache_hits += hits
        self.plan_cache_misses += misses

    def record_kernel(self, record: KernelRecord) -> None:
        """Record a kernel execution outside the engine step loop (the
        standalone API-wrapper hook)."""
        if self.capture_kernels:
            self.kernels.append(record)
        self.kernel_time += record.makespan
        self.num_kernels += 1

    # -- summaries ------------------------------------------------------------

    def component_totals(self) -> Dict[str, float]:
        """Total seconds per step component over the traced run."""
        return dict(self.component_time)

    def counters(self) -> Dict[str, float]:
        """Flat counter dict, suitable for merging into a metrics summary."""
        out: Dict[str, float] = {
            "steps": float(self.num_steps),
            "busy_time": self.busy_time,
            "idle_time": self.idle_time,
            "prefill_tokens": float(self.total_prefill_tokens),
            "decode_tokens": float(self.total_decode_tokens),
            "prefix_cache_hits": float(self.total_prefix_hits),
            "kernels": float(self.num_kernels),
            "kernel_time": self.kernel_time,
        }
        for kind, n in sorted(self.steps_by_kind.items()):
            out[f"steps_{kind}"] = float(n)
        for comp, secs in self.component_time.items():
            out[f"time_{comp}"] = secs
        if self.step_hist.total:
            out["step_p50"] = self.step_hist.quantile(0.5)
            out["step_p99"] = self.step_hist.quantile(0.99)
        # Fault counters appear only when fault activity occurred, so a
        # fault-free run's counter dict is bit-identical to pre-resilience
        # behaviour.
        if self.fault_counts or self.total_degraded_steps:
            out["degraded_steps"] = float(self.total_degraded_steps)
            for key, n in sorted(self.fault_counts.items()):
                out[f"fault_{key.replace(':', '_')}"] = float(n)
        # Same convention: radix/cascade counters only when a hit occurred.
        if self.total_radix_hit_tokens or self.total_cascade_steps:
            out["radix_hit_tokens"] = float(self.total_radix_hit_tokens)
            out["cascade_steps"] = float(self.total_cascade_steps)
        # Same convention: plan-cache counters only when a cache was active.
        if self.plan_cache_hits or self.plan_cache_misses:
            out["plan_cache_hits"] = float(self.plan_cache_hits)
            out["plan_cache_misses"] = float(self.plan_cache_misses)
        return out

    def component_shares(self) -> Dict[str, float]:
        """Fraction of busy time per component (sums to ~1)."""
        if self.busy_time <= 0:
            return {c: 0.0 for c in self.component_time}
        return {c: s / self.busy_time for c, s in self.component_time.items()}


def null_safe(tracer: Optional[StepTracer]) -> bool:
    """True when tracing is active (helper for call sites)."""
    return tracer is not None
