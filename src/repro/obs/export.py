"""Trace exporters: Chrome ``trace_event`` JSON, CSV step log, text summary.

The Chrome trace loads directly in ``chrome://tracing`` or Perfetto
(https://ui.perfetto.dev): the step timeline is one track, each step-time
component (attention / GEMM / allreduce / LM head / overhead) gets its own
track with slices laid sequentially inside the step interval, per-kernel
:class:`SimReport` slices appear on a kernels track, and KV-pool occupancy
plus live-stream counts are emitted as counter tracks.

All timestamps are the *simulated* clock in microseconds (the trace-event
unit), starting at 0 at run start.
"""

from __future__ import annotations

import io
import json
from typing import Dict, List, Optional, Sequence

from repro.obs.events import STEP_COMPONENTS, FaultEvent, StepEvent
from repro.obs.tracer import StepTracer

_PID = 1
_TID_STEPS = 1
_TID_KERNELS = 2 + len(STEP_COMPONENTS)

_US = 1e6  # seconds → trace-event microseconds


def _meta(name: str, tid: Optional[int], label: str, pid: int) -> Dict[str, object]:
    ev: Dict[str, object] = {"ph": "M", "pid": pid, "name": name,
                             "args": {"name": label}}
    if tid is not None:
        ev["tid"] = tid
    return ev


def _process_events(
    events: Sequence[StepEvent],
    fault_events: Optional[Sequence[FaultEvent]],
    pid: int,
    process_name: str,
) -> List[Dict[str, object]]:
    """One engine's trace events under process id ``pid``.

    Cluster traces call this once per replica so each replica renders as
    its own process row (with the shared simulated clock on one axis).
    """
    trace: List[Dict[str, object]] = [
        _meta("process_name", None, process_name, pid),
        _meta("thread_name", _TID_STEPS, "steps", pid),
        _meta("thread_name", _TID_KERNELS, "attention kernels", pid),
    ]
    for i, comp in enumerate(STEP_COMPONENTS):
        trace.append(_meta("thread_name", 2 + i, comp, pid))

    for ev in events:
        ts = ev.t_start * _US
        dur = ev.duration * _US
        if ev.kind == "idle":
            trace.append({
                "ph": "X", "pid": pid, "tid": _TID_STEPS, "ts": ts,
                "dur": dur, "name": "idle", "cat": "idle", "args": {},
            })
            continue
        trace.append({
            "ph": "X", "pid": pid, "tid": _TID_STEPS, "ts": ts, "dur": dur,
            "name": f"{ev.kind} #{ev.index}", "cat": "step",
            "args": {
                "prefill_tokens": ev.num_prefill_tokens,
                "decode_tokens": ev.num_decode_tokens,
                "streams": ev.num_streams,
                "preemptions": ev.preemptions,
                "prefix_cache_hits": ev.prefix_cache_hits,
            },
        })
        # Component slices tile the step interval in breakdown order.
        cursor = ts
        for i, comp in enumerate(STEP_COMPONENTS):
            secs = ev.breakdown.get(comp, 0.0)
            if secs <= 0:
                continue
            trace.append({
                "ph": "X", "pid": pid, "tid": 2 + i, "ts": cursor,
                "dur": secs * _US, "name": comp, "cat": "component",
                "args": {"step": ev.index},
            })
            cursor += secs * _US
        kcursor = ts
        for k in ev.kernels:
            trace.append({
                "ph": "X", "pid": pid, "tid": _TID_KERNELS, "ts": kcursor,
                "dur": k.makespan * _US, "name": k.name, "cat": "kernel",
                "args": {
                    "phase": k.phase,
                    "tiles": k.num_tiles,
                    "ctas": k.num_ctas,
                    "balance": round(k.balance, 4),
                    "gflops": k.total_flops / 1e9,
                    "mbytes": k.total_bytes / 1e6,
                },
            })
            kcursor += k.makespan * _US
        end = ev.t_end * _US
        trace.append({
            "ph": "C", "pid": pid, "ts": end, "name": "kv_pages",
            "args": {"used": ev.kv_used_pages, "free": ev.kv_free_pages},
        })
        trace.append({
            "ph": "C", "pid": pid, "ts": end, "name": "live_streams",
            "args": {"streams": ev.num_streams},
        })

    for fev in fault_events or ():
        trace.append({
            "ph": "i", "pid": pid, "tid": _TID_STEPS, "ts": fev.t * _US,
            "name": f"{fev.site}:{fev.action}", "cat": "fault", "s": "t",
            "args": {
                "step": fev.step_index,
                "req_id": fev.req_id,
                "detail": fev.detail,
            },
        })
    return trace


def to_chrome_trace(
    events: Sequence[StepEvent],
    metadata: Optional[Dict[str, object]] = None,
    fault_events: Optional[Sequence[FaultEvent]] = None,
) -> Dict[str, object]:
    """Convert step events to a ``chrome://tracing`` JSON object.

    ``fault_events`` (from a chaos run's tracer) are rendered as instant
    markers on the step track; omitted, the output is unchanged.
    """
    out: Dict[str, object] = {
        "traceEvents": _process_events(
            events, fault_events, _PID, "repro serving engine"
        ),
        "displayTimeUnit": "ms",
    }
    if metadata:
        out["metadata"] = dict(metadata)
    return out


def to_cluster_trace(
    replicas: Sequence[tuple],
    metadata: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Multi-process Chrome trace for a cluster run.

    ``replicas`` is a sequence of ``(label, events, fault_events)``
    triples — e.g. ``ClusterEngine.trace_processes()`` — rendered as one
    process row each (pid = replica index + 1) on the shared simulated
    clock, so Perfetto shows all replicas' steps on one time axis.
    """
    trace: List[Dict[str, object]] = []
    for i, (label, events, fault_events) in enumerate(replicas):
        trace.extend(_process_events(events, fault_events, i + 1, label))
    out: Dict[str, object] = {
        "traceEvents": trace,
        "displayTimeUnit": "ms",
    }
    if metadata:
        out["metadata"] = dict(metadata)
    return out


def write_cluster_trace(
    path: str,
    replicas: Sequence[tuple],
    metadata: Optional[Dict[str, object]] = None,
) -> None:
    """Serialize :func:`to_cluster_trace` to ``path``."""
    with open(path, "w") as f:
        json.dump(to_cluster_trace(replicas, metadata), f)


def write_chrome_trace(
    path: str,
    events: Sequence[StepEvent],
    metadata: Optional[Dict[str, object]] = None,
    fault_events: Optional[Sequence[FaultEvent]] = None,
) -> None:
    """Serialize :func:`to_chrome_trace` to ``path``."""
    with open(path, "w") as f:
        json.dump(to_chrome_trace(events, metadata, fault_events), f)


_CSV_FIELDS = (
    "index", "kind", "t_start", "t_end", "duration",
    "num_prefill_tokens", "num_decode_tokens", "num_streams",
    *STEP_COMPONENTS,
    "kv_free_pages", "kv_used_pages", "preemptions", "prefix_cache_hits",
    "num_kernels",
)


def to_csv(events: Sequence[StepEvent]) -> str:
    """Flat per-step CSV log (one row per event, kernels counted only)."""
    buf = io.StringIO()
    buf.write(",".join(_CSV_FIELDS) + "\n")
    for ev in events:
        d = ev.to_dict()
        d["num_kernels"] = len(ev.kernels)
        row = []
        for fld in _CSV_FIELDS:
            v = d[fld]
            row.append(repr(v) if isinstance(v, float) else str(v))
        buf.write(",".join(row) + "\n")
    return buf.getvalue()


def write_csv(path: str, events: Sequence[StepEvent]) -> None:
    with open(path, "w") as f:
        f.write(to_csv(events))


def summary_table(tracer: StepTracer) -> str:
    """Human-readable run summary: steps, tokens, component breakdown."""
    lines = ["— step trace summary " + "—" * 43]
    kinds = ", ".join(
        f"{n} {k}" for k, n in sorted(tracer.steps_by_kind.items()) if k != "idle"
    )
    lines.append(f"steps          : {tracer.num_steps} ({kinds or 'none'})")
    lines.append(
        f"tokens         : {tracer.total_prefill_tokens} prefill, "
        f"{tracer.total_decode_tokens} decode"
    )
    lines.append(
        f"wall clock     : {tracer.busy_time * 1e3:.2f} ms busy, "
        f"{tracer.idle_time * 1e3:.2f} ms idle"
    )
    if tracer.total_preemptions or tracer.total_prefix_hits:
        lines.append(
            f"scheduler      : {tracer.total_preemptions} preemptions, "
            f"{tracer.total_prefix_hits} prefix-cache hits"
        )
    shares = tracer.component_shares()
    width = 30
    for comp in STEP_COMPONENTS:
        secs = tracer.component_time.get(comp, 0.0)
        frac = shares.get(comp, 0.0)
        bar = "█" * int(round(frac * width))
        lines.append(
            f"  {comp:<9s} {secs * 1e3:9.2f} ms {frac:6.1%} |{bar:<{width}}|"
        )
    if tracer.num_kernels:
        lines.append(
            f"kernels        : {tracer.num_kernels} simulated launches, "
            f"{tracer.kernel_time * 1e3:.2f} ms attention-kernel time"
        )
    if tracer.step_hist.total:
        lines.append(
            f"step latency   : p50 ≈ {tracer.step_hist.quantile(0.5) * 1e3:.3f} ms, "
            f"p99 ≈ {tracer.step_hist.quantile(0.99) * 1e3:.3f} ms"
        )
    return "\n".join(lines)
