"""Typed observability events (the schema of ``repro.obs``).

The paper's end-to-end analysis (§4.1, Figures 7–10) is about *where a
serving step's time goes* — attention vs GEMM vs allreduce vs host
overhead — and about how individual kernels behave inside each step
(Figure 8).  Two event types carry exactly that:

* :class:`StepEvent` — one engine step (prefill / decode / mixed /
  resume / idle) with its wall-clock interval, token counts, the
  per-component time breakdown the engine assembled in ``_step_time``,
  KV-pool occupancy, and preemption/prefix-cache counters.
* :class:`KernelRecord` — one simulated kernel execution (a
  :class:`~repro.gpu.executor.SimReport` plus identity), captured from
  the attention backend or from a standalone API-wrapper call.

Both are plain dataclasses with ``to_dict`` so every exporter
(Chrome trace, CSV, text summary) shares one schema.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.gpu.executor import SimReport

#: Component keys of a step's time breakdown, in display order.  The sum
#: of these components equals the step duration exactly (they are the
#: terms of ``ServingEngine._step_time``).
STEP_COMPONENTS: Tuple[str, ...] = (
    "attention", "gemm", "allreduce", "lm_head", "overhead",
)

#: Step kinds a :class:`StepEvent` may carry.  ``idle`` marks wall-clock
#: gaps where the engine waited for the next arrival, so that the events
#: of a run tile ``[0, total_time]`` exactly.
STEP_KINDS: Tuple[str, ...] = ("prefill", "decode", "mixed", "resume", "idle")


@dataclass
class KernelRecord:
    """One simulated kernel execution, attributed to its wrapper."""

    name: str  #: wrapper/kernel label (e.g. ``fi_decode``, ``fmt0_prefix``)
    phase: str  #: ``"prefill"`` / ``"decode"`` / ``"single"`` …
    makespan: float
    total_flops: float
    total_bytes: float
    num_tiles: int
    num_ctas: int
    balance: float

    @classmethod
    def from_report(cls, name: str, phase: str, report: SimReport) -> "KernelRecord":
        return cls(
            name=name,
            phase=phase,
            makespan=report.makespan,
            total_flops=report.total_flops,
            total_bytes=report.total_bytes,
            num_tiles=report.num_tiles,
            num_ctas=report.num_ctas,
            balance=report.balance,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "phase": self.phase,
            "makespan": self.makespan,
            "total_flops": self.total_flops,
            "total_bytes": self.total_bytes,
            "num_tiles": self.num_tiles,
            "num_ctas": self.num_ctas,
            "balance": self.balance,
        }


@dataclass
class StepEvent:
    """One serving-engine step (or idle gap) on the simulated clock."""

    index: int  #: 0-based step number within the run
    kind: str  #: one of :data:`STEP_KINDS`
    t_start: float  #: simulated seconds since run start
    t_end: float
    num_prefill_tokens: int = 0  #: prompt tokens processed this step
    num_decode_tokens: int = 0  #: decode tokens produced this step
    num_streams: int = 0  #: live decode streams after the step
    #: Component → seconds; keys are :data:`STEP_COMPONENTS`.  Empty for
    #: ``idle`` events.
    breakdown: Dict[str, float] = field(default_factory=dict)
    kv_free_pages: int = 0
    kv_used_pages: int = 0
    preemptions: int = 0  #: streams evicted while making room for this step
    prefix_cache_hits: int = 0  #: prompts that reused cached prefix pages
    radix_hit_tokens: int = 0  #: prompt tokens served from the radix cache
    cascade_levels: int = 0  #: attention levels when run as a cascade (0 = dense)
    kernels: List[KernelRecord] = field(default_factory=list)
    #: Step ran on the degraded (dense-baseline) backend after repeated
    #: kernel faults; always ``False`` outside resilience runs.
    degraded: bool = False

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    @property
    def num_tokens(self) -> int:
        return self.num_prefill_tokens + self.num_decode_tokens

    def component(self, name: str) -> float:
        return self.breakdown.get(name, 0.0)

    def to_dict(self) -> Dict[str, object]:
        d: Dict[str, object] = {
            "index": self.index,
            "kind": self.kind,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "duration": self.duration,
            "num_prefill_tokens": self.num_prefill_tokens,
            "num_decode_tokens": self.num_decode_tokens,
            "num_streams": self.num_streams,
            "kv_free_pages": self.kv_free_pages,
            "kv_used_pages": self.kv_used_pages,
            "preemptions": self.preemptions,
            "prefix_cache_hits": self.prefix_cache_hits,
        }
        if self.degraded:
            # Only resilience runs carry the key: plain-run exports are
            # byte-identical with and without the fault layer compiled in.
            d["degraded"] = True
        if self.radix_hit_tokens:
            # Same convention for the prefix-cache keys: cold-cache exports
            # are byte-identical with and without the radix layer wired in.
            d["radix_hit_tokens"] = self.radix_hit_tokens
        if self.cascade_levels:
            d["cascade_levels"] = self.cascade_levels
        for comp in STEP_COMPONENTS:
            d[comp] = self.breakdown.get(comp, 0.0)
        d["kernels"] = [k.to_dict() for k in self.kernels]
        return d


#: Actions a :class:`FaultEvent` may record.  ``injected`` events come
#: from the fault plan; every one must be matched by a detection /
#: recovery / shed event for a chaos run to be token-exact.
#: ``committed``/``restored``/``replayed``/``diverged`` belong to the
#: crash-recovery layer: a snapshot landed in the checkpoint store, an
#: engine resumed from one, a journaled token was re-emitted identically
#: on replay, or it was not.
FAULT_ACTIONS: Tuple[str, ...] = (
    "injected", "detected", "retry", "shed", "degraded", "annealed", "flagged",
    "committed", "restored", "replayed", "diverged",
)


@dataclass
class FaultEvent:
    """One fault-related occurrence on the simulated clock.

    ``site`` names the injection/detection site (``kernel``, ``corrupt``,
    ``alloc``, ``straggler``, ``numeric``, ``crash``, ``ckpt``,
    ``recover``, ``checksum``, ``watchdog``, ``deadline``, ``overload``,
    ``retries``, ``backend``); ``action`` is one of :data:`FAULT_ACTIONS`.
    """

    site: str
    action: str
    t: float  #: simulated seconds since run start
    step_index: int = -1  #: engine step during which this occurred
    req_id: int = -1  #: affected request index (-1 = not request-scoped)
    detail: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "site": self.site,
            "action": self.action,
            "t": self.t,
            "step_index": self.step_index,
            "req_id": self.req_id,
            "detail": self.detail,
        }


def validate_event(event: StepEvent) -> None:
    """Sanity-check an event against the schema (used by tests/exporters)."""
    if event.kind not in STEP_KINDS:
        raise ValueError(f"unknown step kind {event.kind!r}; expected one of {STEP_KINDS}")
    if event.t_end < event.t_start:
        raise ValueError(f"event {event.index}: t_end {event.t_end} < t_start {event.t_start}")
    unknown = set(event.breakdown) - set(STEP_COMPONENTS)
    if unknown:
        raise ValueError(f"event {event.index}: unknown breakdown components {sorted(unknown)}")
