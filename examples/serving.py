"""End-to-end LLM serving with swappable attention backends (paper §4.1).

Serves a ShareGPT-like workload on a simulated H100 with Llama-3.1-8B,
holding the engine constant and swapping the attention backend — the
experiment design of paper Figure 7.

Run:  python examples/serving.py
"""

from repro.core import HeadConfig
from repro.gpu import H100_80G
from repro.serving import (
    EngineConfig,
    FlashInferBackend,
    LLAMA_3_1_8B,
    ServingEngine,
    TritonBackend,
    TRTLLMBackend,
    sharegpt_workload,
)


def main() -> None:
    model = LLAMA_3_1_8B
    heads = HeadConfig(model.num_qo_heads, model.num_kv_heads, model.head_dim)
    requests = sharegpt_workload(num_requests=80, rate=80.0, seed=0)
    print(
        f"serving {len(requests)} ShareGPT-like requests at 80 req/s "
        f"on {H100_80G.name} / {model.name}\n"
    )

    backends = [
        FlashInferBackend(heads, H100_80G),
        TritonBackend(heads, H100_80G),
        TRTLLMBackend(heads, H100_80G),
    ]
    print(f"{'backend':>12s} {'median ITL':>12s} {'median TTFT':>12s} "
          f"{'P99 TTFT':>10s} {'tokens/s':>10s}")
    results = {}
    for backend in backends:
        engine = ServingEngine(model, backend, H100_80G, EngineConfig(max_running=256))
        metrics = engine.run(requests)
        s = metrics.summary()
        results[backend.name] = s
        print(
            f"{backend.name:>12s} {s['median_itl'] * 1e3:9.2f} ms "
            f"{s['median_ttft'] * 1e3:9.1f} ms "
            f"{s['p99_ttft'] * 1e3:7.0f} ms {s['throughput_tok_s']:10.0f}"
        )

    gain = 1 - results["flashinfer"]["median_itl"] / results["triton"]["median_itl"]
    print(f"\nFlashInfer vs Triton backend: {gain:.0%} inter-token-latency reduction")


if __name__ == "__main__":
    main()
