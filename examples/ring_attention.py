"""Ring attention: million-token contexts across simulated devices (§2.2).

The attention-state algebra the engine uses for on-device split-KV also
scales *across* devices: shard the sequence, rotate KV shards around a
ring, merge partial states with ⊕.  This example checks exactness against
a single-device oracle and shows the compute/communication overlap
tradeoff as the ring grows.

Run:  python examples/ring_attention.py
"""

import numpy as np

from repro.core import HeadConfig, reference_attention
from repro.distributed import RingAttention
from repro.utils.dtypes import StorageDType, round_to_storage


def main() -> None:
    rng = np.random.default_rng(0)
    heads = HeadConfig(num_qo_heads=8, num_kv_heads=2, head_dim=64)
    n = 2048  # keep numerics fast; the cost model extrapolates the shape

    q = rng.standard_normal((n, 8, 64))
    k = rng.standard_normal((n, 2, 64))
    v = rng.standard_normal((n, 2, 64))
    ref = reference_attention(
        q, round_to_storage(k, StorageDType.FP16), round_to_storage(v, StorageDType.FP16),
        causal=True,
    )

    print(f"causal prefill of {n} tokens, sharded over a device ring\n")
    print(f"{'devices':>8s} {'max err':>10s} {'compute':>10s} {'comm':>10s} "
          f"{'makespan':>10s} {'skipped':>8s}")
    for num_devices in (1, 2, 4, 8):
        ring = RingAttention(num_devices, heads)
        out, rep = ring.run(q, k, v, causal=True)
        err = float(np.abs(out - ref).max())
        print(
            f"{num_devices:8d} {err:10.2e} {rep.compute_time * 1e6:8.1f}µs "
            f"{rep.comm_time * 1e6:8.1f}µs {rep.makespan * 1e6:8.1f}µs "
            f"{rep.skipped_pairs:8d}"
        )

    # A slow interconnect flips the balance: the ring becomes comm-bound.
    slow = RingAttention(8, heads, link_bandwidth=5e9)
    _, rep = slow.run(q, k, v, causal=True)
    print(
        f"\nwith a 5 GB/s link the 8-device ring is "
        f"{'comm' if rep.comm_bound else 'compute'}-bound "
        f"(comm {rep.comm_time * 1e6:.1f}µs vs compute {rep.compute_time * 1e6:.1f}µs)"
    )


if __name__ == "__main__":
    main()
