"""Quickstart: batched decode attention over a paged KV cache.

Mirrors the paper's core workflow (§3.4): store per-request KV in a paged
pool, export its page table as the block-sparse attention structure, plan a
load-balanced schedule, and run the JIT-compiled kernel.  The result is
checked against a dense softmax oracle, and the simulated-GPU report shows
the load balance the scheduler achieved.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import BatchAttentionWrapper, WorkspaceBuffer, AttentionMapping, A100_40G
from repro.core import HeadConfig, VANILLA, reference_attention
from repro.kvcache import PagedKVCache
from repro.utils.dtypes import StorageDType, round_to_storage


def main() -> None:
    rng = np.random.default_rng(0)

    # Llama-8B-like head geometry (GQA group size 4), small head_dim for speed.
    heads = HeadConfig(num_qo_heads=8, num_kv_heads=2, head_dim=64)

    # 1. A paged KV cache, page size 16 — four requests with varied history.
    cache = PagedKVCache(num_pages=512, page_size=16, num_kv_heads=2, head_dim=64)
    kv_lens = [700, 1300, 90, 2500]
    seqs = []
    for n in kv_lens:
        sid = cache.new_seq()
        cache.append(sid, rng.standard_normal((n, 2, 64)), rng.standard_normal((n, 2, 64)))
        seqs.append(sid)
    print(f"cache: {cache}")

    # 2. The page table *is* the block-sparse attention structure (§3.1.1).
    mapping = AttentionMapping(
        qo_indptr=np.arange(len(seqs) + 1),  # one decode query per request
        kv=cache.layout(seqs),
        causal=True,
    )

    # 3. Plan + run (Listing 1).  The wrapper JIT-compiles the kernel at
    #    construction and the scheduler balances work across CTAs per step.
    workspace = WorkspaceBuffer(256 * 1024 * 1024)
    wrapper = BatchAttentionWrapper(VANILLA, heads, workspace, A100_40G, avg_qo_len=1)
    plan = wrapper.plan(mapping)
    print(f"plan: {plan.num_work_items} work items, KV chunk size {plan.kv_chunk_size}, "
          f"{len(plan.merges)} split-KV merges")

    q = rng.standard_normal((len(seqs), 8, 64))
    out, lse, report = wrapper.run(q, cache.k_pool, cache.v_pool)

    # 4. Verify against the dense oracle.
    worst = 0.0
    for r, sid in enumerate(seqs):
        k_hist, v_hist = cache.gather(sid)
        ref = reference_attention(
            q[r : r + 1],
            round_to_storage(k_hist, StorageDType.FP16),
            round_to_storage(v_hist, StorageDType.FP16),
            causal=True,
        )
        worst = max(worst, float(np.abs(out[r : r + 1] - ref).max()))
    print(f"max |error| vs dense oracle: {worst:.2e}")

    # 5. The simulated GPU's view of the kernel.
    print(
        f"simulated kernel: {report.makespan * 1e6:.1f} µs on {A100_40G.name}, "
        f"bandwidth {report.achieved_bandwidth() / 1e9:.0f} GB/s "
        f"({report.bandwidth_utilization(A100_40G):.0%} of peak), "
        f"CTA load balance {report.balance:.2f}"
    )


if __name__ == "__main__":
    main()
