"""Parallel generation with composable formats (paper §3.1.2, §4.4).

Each request asks for ``n`` parallel completions (the OpenAI ``n``
parameter).  All ``n`` decode streams share the prompt's KV pages; the
composable-format decomposition computes attention over the shared prefix
once per cluster with a large block row size, then merges with the
per-stream suffix states using the ``⊕`` operator.

Run:  python examples/parallel_generation.py
"""

from repro.core import HeadConfig
from repro.gpu import H100_80G
from repro.serving import (
    EngineConfig,
    FlashInferBackend,
    LLAMA_3_1_8B,
    ServingEngine,
    sharegpt_workload,
)


def main() -> None:
    model = LLAMA_3_1_8B
    heads = HeadConfig(model.num_qo_heads, model.num_kv_heads, model.head_dim)
    print(f"{'n':>3s} {'single ITL':>12s} {'composable ITL':>15s} {'speedup':>8s}")
    for n in (1, 2, 4, 8, 16):
        requests = sharegpt_workload(num_requests=24, rate=16.0, seed=1, n=n)
        itl = {}
        for composable in (False, True):
            backend = FlashInferBackend(heads, H100_80G, composable=composable)
            engine = ServingEngine(
                model, backend, H100_80G,
                EngineConfig(max_running=1024, composable=composable),
            )
            metrics = engine.run(requests)
            itl[composable] = metrics.median_itl()
        speedup = 1 - itl[True] / itl[False]
        print(
            f"{n:3d} {itl[False] * 1e3:9.2f} ms {itl[True] * 1e3:12.2f} ms "
            f"{speedup:7.1%}"
        )
    print("\n(peak benefit is expected at moderate n; tiny n lacks sharing,")
    print(" huge n is no longer attention-dominated — paper Figure 10)")


if __name__ == "__main__":
    main()
