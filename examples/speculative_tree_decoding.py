"""Speculative tree decoding with block-sparse tree attention.

Medusa/SpecInfer-style verification (paper §3.1.1: tree attentions are one
more structure the block-sparse format unifies): a draft model proposes a
*tree* of candidate continuations; the target model scores every node in
one batched attention call where each draft token attends the committed
context plus its own ancestor path only.

Run:  python examples/speculative_tree_decoding.py
"""

import numpy as np

from repro import BatchAttentionWrapper, WorkspaceBuffer, AttentionMapping
from repro.core import HeadConfig, reference_attention
from repro.kvcache import PagedKVCache
from repro.variants import make_tree_attention, tree_attention_mask


def main() -> None:
    rng = np.random.default_rng(0)
    heads = HeadConfig(4, 2, 32)

    # Committed context of 60 tokens in the paged cache.
    context_len = 60
    cache = PagedKVCache(64, 4, 2, 32)
    sid = cache.new_seq()
    cache.append(sid, rng.standard_normal((context_len, 2, 32)),
                 rng.standard_normal((context_len, 2, 32)))

    # A draft tree: two branches from the root, one of which forks again.
    #      0
    #     / \
    #    1   2
    #   / \    \
    #  3   4    5
    parents = [-1, 0, 0, 1, 1, 2]
    n = len(parents)
    print("draft tree parents:", parents)
    print(tree_attention_mask(parents)[:, :n].astype(int))

    # Draft K/V go into the same cache, right after the context.
    draft_k = rng.standard_normal((n, 2, 32))
    draft_v = rng.standard_normal((n, 2, 32))
    cache.append(sid, draft_k, draft_v)

    variant = make_tree_attention(parents, context_len)
    mapping = AttentionMapping(
        np.array([0, n]), cache.layout([sid]), causal=True
    )
    wrapper = BatchAttentionWrapper(
        variant, heads, WorkspaceBuffer(1 << 26), avg_qo_len=n
    )
    wrapper.plan(mapping)
    q = rng.standard_normal((n, 4, 32))
    out, _, report = wrapper.run(q, cache.k_pool, cache.v_pool)

    # Verify one leaf against a per-path dense computation: node 4's path
    # is context + [0, 1, 4].  (K/V round through fp16 storage, like the
    # kernel's cache reads.)
    from repro.utils.dtypes import StorageDType, round_to_storage

    k_hist, v_hist = cache.gather(sid)
    k_hist = round_to_storage(k_hist, StorageDType.FP16)
    v_hist = round_to_storage(v_hist, StorageDType.FP16)
    path = list(range(context_len)) + [context_len + 0, context_len + 1, context_len + 4]
    ref = reference_attention(
        q[4:5], k_hist[path], v_hist[path], causal=False,
    )
    err = np.abs(out[4:5] - ref).max()
    print(f"\nscored {n} draft tokens in one attention call; "
          f"leaf-path check |err| = {err:.2e}")
    print(f"simulated kernel time: {report.makespan * 1e6:.2f} µs "
          f"(vs {n} sequential decode calls)")


if __name__ == "__main__":
    main()
