"""Step-level tracing and profiling of a serving run (repro.obs).

Runs a ShareGPT-like workload through the serving engine with a
:class:`repro.obs.StepTracer` attached, then shows the three exporters:

* a Chrome ``trace_event`` JSON you can open in ``chrome://tracing`` or
  https://ui.perfetto.dev — steps, per-component lanes (attention / GEMM /
  allreduce / LM head / overhead), per-kernel slices, and KV-pool counters;
* a per-step CSV log;
* the rolling-counter text summary (also folded into
  ``ServingMetrics.summary()`` under ``obs_*`` keys).

Standalone API-wrapper calls are profiled with the same schema: pass a
tracer to ``single_prefill_with_kv_cache`` / the batch wrappers and each
``run()`` appends a ``KernelRecord``.

Run:  PYTHONPATH=src python examples/tracing_profiling.py
"""

import numpy as np

from repro.api import single_prefill_with_kv_cache
from repro.core import HeadConfig
from repro.diagnostics import format_step_events
from repro.gpu import H100_80G
from repro.obs import StepTracer, summary_table, to_csv, write_chrome_trace
from repro.serving import (
    EngineConfig,
    FlashInferBackend,
    LLAMA_3_1_8B,
    ServingEngine,
    sharegpt_workload,
)


def main() -> None:
    model = LLAMA_3_1_8B
    heads = HeadConfig(model.num_qo_heads, model.num_kv_heads, model.head_dim)
    requests = sharegpt_workload(24, rate=80.0, seed=0)

    tracer = StepTracer()  # capture_kernels=True by default
    engine = ServingEngine(
        model,
        FlashInferBackend(heads, H100_80G),
        H100_80G,
        EngineConfig(max_running=128, chunked_prefill=True),
        tracer=tracer,
    )
    metrics = engine.run(requests)

    print(f"{len(requests)} requests served in {metrics.total_time * 1e3:.1f} ms "
          f"over {tracer.num_steps} engine steps\n")

    # 1. Chrome trace — open in chrome://tracing or Perfetto.
    write_chrome_trace("serving_trace.json", tracer.events,
                       metadata={"model": model.name})
    print("wrote serving_trace.json (chrome://tracing)")

    # 2. CSV step log (first lines shown).
    csv = to_csv(tracer.events)
    print("\n— step log (CSV head) " + "—" * 42)
    print("\n".join(csv.splitlines()[:5]))

    # 3. Per-step table + rolling summary.
    print("\n— per-step view " + "—" * 48)
    print(format_step_events(tracer.events, max_rows=10))
    print()
    print(summary_table(tracer))

    # The same counters ride along in the metrics summary.
    obs_keys = {k: v for k, v in metrics.summary().items() if k.startswith("obs_")}
    print(f"\nServingMetrics.summary() carries {len(obs_keys)} obs_* counters")

    # Standalone wrapper profiling with the same schema.
    single_tracer = StepTracer()
    q = np.random.default_rng(0).standard_normal((128, heads.num_qo_heads, heads.head_dim))
    kv = np.random.default_rng(1).standard_normal((128, heads.num_kv_heads, heads.head_dim))
    single_prefill_with_kv_cache(q, kv, kv, gpu=H100_80G, tracer=single_tracer)
    rec = single_tracer.kernels[-1]
    print(f"\nstandalone single_prefill: {rec.name} ran {rec.num_tiles} tiles "
          f"in {rec.makespan * 1e6:.1f} µs (balance {rec.balance:.2f})")


if __name__ == "__main__":
    main()
