"""StreamingLLM with a fused RoPE+attention kernel (paper §4.3).

Streams a long token sequence through a constant-memory sink+window cache,
applying RoPE at *cache* positions inside the attention kernel — the custom
variant the paper generates "with merely 20 additional lines of code".
Compares the fused kernel's simulated cost per decode step against the
unfused pipeline (standalone RoPE kernel + attention) and the original
StreamingLLM implementation's overheads.

Run:  python examples/streaming_llm.py
"""

import numpy as np

from repro import BatchAttentionWrapper, WorkspaceBuffer, A100_40G
from repro.baselines import unfused_rope_attention, unfused_streaming_step
from repro.core import HeadConfig
from repro.kvcache import StreamingKVCache
from repro.variants import FUSED_ROPE


def main() -> None:
    rng = np.random.default_rng(0)
    heads = HeadConfig(num_qo_heads=8, num_kv_heads=8, head_dim=64)
    num_sinks, window = 4, 252

    cache = StreamingKVCache(
        batch_size=1, num_sinks=num_sinks, window=window,
        num_kv_heads=8, head_dim=64,
    )
    wrapper = BatchAttentionWrapper(
        FUSED_ROPE, heads, WorkspaceBuffer(128 * 1024 * 1024), A100_40G, avg_qo_len=1
    )

    stream_len = 2000  # tokens streamed through a 256-entry cache
    out = None
    for step in range(stream_len):
        k = rng.standard_normal((1, 8, 64))
        v = rng.standard_normal((1, 8, 64))
        cache.append(0, k, v)
        if step % 500 != 499:
            continue
        mapping = cache.mapping([0], [1])
        wrapper.plan(mapping)
        q = rng.standard_normal((1, 8, 64))
        out, _, report = wrapper.run(q, cache.k_pool, cache.v_pool)

        # Verify against the unfused oracle on the live cache.
        slots = mapping.kv.slot_indices(0)
        n = len(slots)
        ref = unfused_rope_attention(
            q, cache.k_pool[slots], cache.v_pool[slots],
            q_pos=np.array([n - 1]), kv_pos=np.arange(n), causal=True,
        )
        err = np.abs(out - ref).max()
        print(
            f"step {step + 1:5d}: cache holds {cache.cache_len(0):3d}/{stream_len} tokens "
            f"(constant memory), fused kernel {report.makespan * 1e6:.2f} µs, "
            f"|err| vs unfused oracle {err:.1e}"
        )

    # --- fused vs unfused vs original implementation, per decode step -------
    mapping = cache.mapping([0], [1])
    wrapper.plan(mapping)
    _, _, fused_report = wrapper.run(None, compute=False)
    unfused = unfused_streaming_step(
        fused_report, cache_len=cache.cache_len(0), batch_size=1,
        heads=heads, gpu=A100_40G,
    )
    original = unfused_streaming_step(
        fused_report, cache_len=cache.cache_len(0), batch_size=1,
        heads=heads, gpu=A100_40G, original_impl=True,
    )
    f, u, o = fused_report.makespan, unfused.total.makespan, original.total.makespan
    print("\nper-step attention pipeline cost (simulated):")
    print(f"  FlashInfer fused RoPE+attention : {f * 1e6:8.2f} µs")
    print(f"  unfused RoPE kernel + attention : {u * 1e6:8.2f} µs  ({u / f:.2f}x)")
    print(f"  original StreamingLLM impl      : {o * 1e6:8.2f} µs  ({o / f:.2f}x)")


if __name__ == "__main__":
    main()
