"""A real transformer generating tokens through the attention engine.

Builds a tiny randomly-initialized Llama-style model and serves it two
ways: (a) the dense oracle (full forward pass recomputed every token) and
(b) the production path — paged KV cache, load-balanced plans, the
JIT-compiled kernel — verifying the two generate token-identical output,
then forking the sequence for parallel continuations.

Run:  python examples/tiny_model_generation.py
"""

import numpy as np

from repro.models import GenerationSession, TinyConfig, TinyTransformer


def main() -> None:
    model = TinyTransformer(TinyConfig(num_layers=3), seed=7)
    prompt = [11, 42, 42, 97, 3, 5]

    dense = model.greedy_generate_dense(prompt, 12)
    sess = GenerationSession(model)
    paged = sess.greedy_generate(prompt, 12)

    print(f"prompt tokens : {prompt}")
    print(f"dense oracle  : {dense}")
    print(f"paged engine  : {paged}")
    print(f"token-exact   : {dense == paged}")

    # Parallel continuations: fork the prompt's KV pages (zero copies of
    # full pages) and decode different branches.  A longer prompt spans
    # several full pages, which the fork shares by refcount.
    long_prompt = (prompt * 4)[:22]
    sess2 = GenerationSession(model)
    root = sess2.new_sequence()
    logits = sess2.step([root], [long_prompt])
    first = int(np.argmax(logits[0]))
    fork = sess2.fork_sequence(root)
    second_best = int(np.argsort(logits[0])[-2])

    branches = {root: [first], fork: [second_best]}
    for _ in range(6):
        out = sess2.step(
            [root, fork], [[branches[root][-1]], [branches[fork][-1]]]
        )
        branches[root].append(int(np.argmax(out[0])))
        branches[fork].append(int(np.argmax(out[1])))
    print(f"\nbranch A (greedy)      : {branches[root]}")
    print(f"branch B (2nd choice)  : {branches[fork]}")
    shared = sum(
        1 for c in sess2.cache
        for p in c.seq_pages(sess2.seqs[root][0])
        if c.page_refcount(p) > 1
    )
    print(f"prompt pages shared between branches (refcount > 1): {shared}")


if __name__ == "__main__":
    main()
