"""Custom attention variants via the JIT compiler (paper §3.2.3, Figure 5).

Reproduces the paper's worked example — FlashSigmoid — by declaring the
variant's functors and extra parameters, then inspecting the specialized
kernel the JIT compiler generates.  Also shows a Gemma-2-style soft-cap
variant and a fused-RoPE variant ("merely 20 additional lines", §4.3).

Run:  python examples/custom_variant.py
"""

import numpy as np

from repro import BatchAttentionWrapper, WorkspaceBuffer
from repro.core import AttentionVariant, HeadConfig, KernelTraits, ParamDecl, get_kernel
from repro.kvcache import PagedKVCache
from repro.sparse import AttentionMapping


def main() -> None:
    rng = np.random.default_rng(0)

    # --- Figure 5: FlashSigmoid as a variant spec --------------------------
    flash_sigmoid = AttentionVariant(
        name="flash_sigmoid",
        params=(ParamDecl("scale", default=1.0), ParamDecl("bias", default=0.0)),
        logits_transform="1.0 / (1.0 + np.exp(-(logits * params.scale + params.bias)))",
        use_softmax=False,  # sigmoid scoring: states compose by summation
    )

    kernel = get_kernel(flash_sigmoid, KernelTraits(head_dim=32))
    print("--- generated kernel source (specialized, softmax compiled out) ---")
    print("\n".join(kernel.source.splitlines()[:12]))
    print("    ...")
    sum_lines = [l for l in kernel.source.splitlines() if "weights" in l]
    print("\n".join(sum_lines))
    print()

    # --- run it end to end -------------------------------------------------
    heads = HeadConfig(4, 2, 32)
    cache = PagedKVCache(64, 8, 2, 32)
    sid = cache.new_seq()
    cache.append(sid, rng.standard_normal((100, 2, 32)), rng.standard_normal((100, 2, 32)))
    mapping = AttentionMapping(np.array([0, 1]), cache.layout([sid]), causal=True)

    wrapper = BatchAttentionWrapper(
        flash_sigmoid, heads, WorkspaceBuffer(64 * 1024 * 1024), avg_qo_len=1
    )
    wrapper.plan(mapping, params={"scale": 0.5, "bias": -1.0})
    q = rng.standard_normal((1, 4, 32))
    out, _, _ = wrapper.run(q, cache.k_pool, cache.v_pool)
    print(f"FlashSigmoid decode output norm: {np.linalg.norm(out):.4f}")

    # --- two more variants, a couple of lines each --------------------------
    softcap = AttentionVariant(
        name="gemma_softcap",
        params=(ParamDecl("cap", default=30.0),),
        logits_transform="params.cap * np.tanh(logits / params.cap)",
    )
    from repro.variants import make_fused_rope

    for variant in (softcap, make_fused_rope()):
        w = BatchAttentionWrapper(
            variant, heads, WorkspaceBuffer(64 * 1024 * 1024), avg_qo_len=1
        )
        w.plan(mapping)
        out, _, _ = w.run(q, cache.k_pool, cache.v_pool)
        print(f"{variant.name:>14s} decode output norm: {np.linalg.norm(out):.4f}")

    from repro.core import cache_info

    print(f"JIT cache: {cache_info()}")


if __name__ == "__main__":
    main()
