"""Query-aware sparse attention over the block-sparse kernel (Quest, §5.4).

A long-context decode where each step attends only the most *critical*
pages: per-page key min/max summaries give an upper bound on any query·key
logit in the page, the top-budget pages are selected per step, and the
pruned page set flows through the same block-sparse kernel — "FlashInfer's
block sparse kernel remains effective" for dynamic KV sparsity.

Run:  python examples/quest_sparse_attention.py
"""

import numpy as np

from repro import A100_40G, BatchAttentionWrapper, WorkspaceBuffer, AttentionMapping
from repro.core import HeadConfig, VANILLA, reference_attention
from repro.kvcache import PagedKVCache
from repro.sparse import PageSummaryStore, quest_mapping


def main() -> None:
    rng = np.random.default_rng(0)
    heads = HeadConfig(8, 2, 64)
    page_size = 16
    context = 8192  # 512 pages

    cache = PagedKVCache(1024, page_size, 2, 64)
    sid = cache.new_seq()
    # A long context with a few "important" regions the query cares about.
    k = rng.standard_normal((context, 2, 64)) * 0.3
    v = rng.standard_normal((context, 2, 64))
    q = rng.standard_normal((1, 8, 64))
    for start in (1024, 4096, 7000):  # planted critical pages
        for h in range(2):
            k[start : start + page_size, h] = 6.0 * (
                q[0, 4 * h : 4 * h + 4].mean(axis=0)
            )
    cache.append(sid, k, v)

    store = PageSummaryStore(cache.num_pages, page_size, 2, 64)
    layout = cache.layout([sid])
    store.rebuild_from_pool(cache.k_pool, layout.group_blocks(0), context)

    full_mapping = AttentionMapping(np.array([0, 1]), layout, causal=True)
    w_full = BatchAttentionWrapper(VANILLA, heads, WorkspaceBuffer(1 << 28),
                                   A100_40G, avg_qo_len=1)
    w_full.plan(full_mapping)
    full_out, _, full_rep = w_full.run(q, cache.k_pool, cache.v_pool)

    print(f"context: {context} tokens ({context // page_size} pages)")
    print(f"{'budget':>8s} {'pages read':>11s} {'sim time':>10s} "
          f"{'speedup':>8s} {'max |err|':>10s}")
    print(f"{'full':>8s} {context // page_size:11d} "
          f"{full_rep.makespan * 1e6:8.2f}µs {'1.00x':>8s} {'—':>10s}")
    for budget in (128, 32, 8):
        pruned = quest_mapping(layout, q, store, page_budget=budget)
        w = BatchAttentionWrapper(VANILLA, heads, WorkspaceBuffer(1 << 28),
                                  A100_40G, avg_qo_len=1)
        w.plan(pruned)
        out, _, rep = w.run(q, cache.k_pool, cache.v_pool)
        err = float(np.abs(out - full_out).max())
        print(f"{budget:8d} {int(pruned.kv.kv_lens[0]) // page_size:11d} "
              f"{rep.makespan * 1e6:8.2f}µs "
              f"{full_rep.makespan / rep.makespan:7.2f}x {err:10.2e}")

    # The planted critical pages must survive even the tightest budget.
    pruned = quest_mapping(layout, q, store, page_budget=8)
    kept = set(pruned.kv.group_blocks(0).tolist())
    planted = {start // page_size for start in (1024, 4096, 7000)}
    print(f"\nplanted critical pages kept at budget 8: "
          f"{planted <= kept} ({sorted(planted)} ⊆ kept)")


if __name__ == "__main__":
    main()
