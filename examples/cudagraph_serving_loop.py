"""The CUDAGraph text-generation loop of paper Listing 1.

Captures a decode step once (freezing grid size and workspace addresses)
and replays it each generation step after re-planning on the CPU — the
dynamism-aware runtime design of §3.3: per-step variability flows only
through workspace *contents*, never through launch arguments.

Run:  python examples/cudagraph_serving_loop.py
"""

import numpy as np

from repro import BatchAttentionWrapper, CudaGraph, WorkspaceBuffer, AttentionMapping
from repro.core import HeadConfig, VANILLA
from repro.kvcache import PagedKVCache


def main() -> None:
    rng = np.random.default_rng(0)
    heads = HeadConfig(8, 2, 64)
    batch = 4

    cache = PagedKVCache(1024, 16, 2, 64)
    seqs = []
    for _ in range(batch):
        sid = cache.new_seq()
        n = int(rng.integers(100, 400))
        cache.append(sid, rng.standard_normal((n, 2, 64)), rng.standard_normal((n, 2, 64)))
        seqs.append(sid)

    workspace = WorkspaceBuffer(256 * 1024 * 1024)
    # Upper bounds provided at init so the workspace layout never moves
    # (Appendix D.3 — a CUDAGraph requirement).
    attn = BatchAttentionWrapper(
        VANILLA, heads, workspace, avg_qo_len=1,
        max_batch_size=batch, max_total_qo=batch,
    )

    def current_mapping() -> AttentionMapping:
        return AttentionMapping(np.arange(batch + 1), cache.layout(seqs), causal=True)

    # --- compile: dummy plan, then capture the decode step ------------------
    attn.plan(current_mapping())
    graph = CudaGraph()
    with graph.capture():
        attn.run(None, compute=False)
    print(f"captured graph with {graph.num_launches} launch(es)")

    # --- text generation loop: plan per step, replay the graph --------------
    for step in range(5):
        for sid in seqs:
            cache.append(sid, rng.standard_normal((1, 2, 64)), rng.standard_normal((1, 2, 64)))
        attn.plan(current_mapping())  # CPU work, not captured
        graph.replay()
        report = attn.last_report
        lens = [cache.seq_len(s) for s in seqs]
        print(
            f"step {step}: kv lens {lens} → replayed attention "
            f"{report.makespan * 1e6:.2f} µs (balance {report.balance:.2f})"
        )
    print(f"graph replayed {graph.replay_count} times with frozen launch arguments")


if __name__ == "__main__":
    main()
