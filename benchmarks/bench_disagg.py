"""Disaggregation sweep: colocated vs prefill/decode-split serving.

Not a pytest benchmark (no ``test_`` prefix): this is the perf-trajectory
harness for the disaggregated-serving subsystem.  It runs one fixed mixed
workload — a minority of long prompts with short outputs interleaved with
chatty short-prompt/long-output requests — on a 2-replica cluster twice:
colocated (both replicas serve prefill and decode, least-loaded routing)
and disaggregated (``prefill=1,decode=1`` with live KV handoff over
priced links).  Both arms must stay token-exact against the single-GPU
reference (``tokens_lost`` must be 0), the chatty requests' ITL p95 must
improve under disaggregation (the headline interference-isolation win),
and one timestamped record with per-class latencies and handoff traffic
is appended to ``BENCH_disagg.json`` at the repo root so successive
commits build a trajectory.

Usage::

    PYTHONPATH=src python benchmarks/bench_disagg.py
    PYTHONPATH=src python benchmarks/bench_disagg.py --requests 48 --rate 60
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import subprocess

import numpy as np

from repro.cluster import (
    ClusterConfig,
    ClusterEngine,
    expected_tokens,
)
from repro.gpu import H100_80G
from repro.serving import (
    MIXED_LONG_PROMPT_THRESHOLD,
    EngineConfig,
    LLAMA_3_1_8B,
    mixed_disagg_workload,
)

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_disagg.json",
)


def class_latencies(cm) -> dict:
    """Per-class (chatty vs long-prompt) latency roll-up for one run.

    Class membership is recoverable from the prompt length alone — the
    workload generator keeps chatty prompts strictly below
    ``MIXED_LONG_PROMPT_THRESHOLD`` and long prompts at or above it.
    """
    itls = {"chatty": [], "long": []}
    ttfts = {"chatty": [], "long": []}
    for reqs, metrics in zip(cm.replica_requests, cm.replicas):
        for tr in metrics.traces:
            if tr.req_id < 0:
                continue
            klass = (
                "chatty"
                if reqs[tr.req_id].prompt_len < MIXED_LONG_PROMPT_THRESHOLD
                else "long"
            )
            itls[klass].extend(tr.itls.tolist())
            ttfts[klass].append(tr.ttft)
    out = {}
    for klass in ("chatty", "long"):
        out[f"{klass}_itl_p95_s"] = round(
            float(np.percentile(itls[klass], 95)) if itls[klass] else float("nan"), 6
        )
        out[f"{klass}_ttft_p95_s"] = round(
            float(np.percentile(ttfts[klass], 95)) if ttfts[klass] else float("nan"), 6
        )
        out[f"{klass}_streams"] = len(ttfts[klass])
    return out


def run_arm(label, workload, expected, cfg, **engine_kwargs) -> dict:
    cm = ClusterEngine(LLAMA_3_1_8B, H100_80G, cfg, **engine_kwargs).run(workload)
    divergent, compared = cm.token_divergence(expected)
    s = cm.summary()
    row = {"arm": label, "makespan_s": round(cm.total_time, 6)}
    row.update(class_latencies(cm))
    row.update({
        "cluster_itl_p95_s": round(s["cluster_p95_itl"], 6),
        "cluster_ttft_p95_s": round(s["cluster_p95_ttft"], 6),
        "tokens_lost": divergent,
        "streams_compared": compared,
    })
    if "handoff_requests" in s:
        row.update({
            "handoff_requests": int(s["handoff_requests"]),
            "handoff_pages": int(s["handoff_pages"]),
            "handoff_bytes": s["handoff_bytes"],
            "handoff_chunks": int(s["handoff_chunks"]),
            "handoff_retries": int(s["handoff_retries"]),
            "link_handoff_bytes": s.get("link_handoff_bytes", 0.0),
        })
    print(
        f"  {label:12s}: chatty ITL p95 {row['chatty_itl_p95_s'] * 1e3:6.2f} ms, "
        f"chatty TTFT p95 {row['chatty_ttft_p95_s'] * 1e3:6.1f} ms, "
        f"long TTFT p95 {row['long_ttft_p95_s'] * 1e3:6.1f} ms, "
        f"makespan {row['makespan_s'] * 1e3:7.1f} ms, "
        f"tokens_lost {row['tokens_lost']}/{row['streams_compared']}"
    )
    return row


def run_sweep(requests, rate, seed, topology) -> list:
    workload = mixed_disagg_workload(requests, rate, seed=seed)
    reference = ClusterEngine(
        LLAMA_3_1_8B, H100_80G, ClusterConfig()
    ).run_reference(workload)
    expected = expected_tokens(reference)
    # Both arms run the identical engine config; the only delta is the
    # role split, so the per-class latency delta is pure interference
    # isolation (plus the handoff wire cost disagg pays for it).
    engine = EngineConfig(max_running=256, chunked_prefill=True, composable=True)
    rows = [
        run_arm(
            "colocated", workload, expected,
            ClusterConfig(tp=1, dp=2, topology=topology,
                          router="least-loaded", engine=engine),
        ),
        run_arm(
            "disagg", workload, expected,
            ClusterConfig(tp=1, dp=2, topology=topology,
                          roles="prefill=1,decode=1", engine=engine),
        ),
    ]
    colocated, disagg = rows
    improved = disagg["chatty_itl_p95_s"] < colocated["chatty_itl_p95_s"]
    disagg["chatty_itl_p95_improved"] = improved
    disagg["chatty_itl_p95_delta_s"] = round(
        colocated["chatty_itl_p95_s"] - disagg["chatty_itl_p95_s"], 6
    )
    print(
        f"  chatty ITL p95: {colocated['chatty_itl_p95_s'] * 1e3:.2f} ms "
        f"colocated -> {disagg['chatty_itl_p95_s'] * 1e3:.2f} ms disagg "
        f"({'improved' if improved else 'REGRESSED'})"
    )
    return rows


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--requests", type=int, default=32)
    ap.add_argument("--rate", type=float, default=80.0)
    ap.add_argument("--seed", type=int, default=7)
    ap.add_argument("--topology", default="nvlink")
    ap.add_argument("--output", default=DEFAULT_OUTPUT)
    args = ap.parse_args()

    print(
        f"disagg sweep: {args.requests} mixed requests at {args.rate} req/s, "
        f"dp=2 (colocated least-loaded vs prefill=1,decode=1), "
        f"{args.topology} topology"
    )
    rows = run_sweep(args.requests, args.rate, args.seed, args.topology)
    try:
        commit = subprocess.check_output(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(args.output), text=True,
        ).strip()
    except Exception:
        commit = "unknown"
    record = {
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "commit": commit,
        "workload": {
            "requests": args.requests, "rate": args.rate, "seed": args.seed,
            "topology": args.topology, "model": "llama-3.1-8b",
        },
        "results": rows,
    }
    history = []
    if os.path.exists(args.output):
        with open(args.output) as f:
            history = json.load(f)
    history.append(record)
    with open(args.output, "w") as f:
        json.dump(history, f, indent=2)
        f.write("\n")
    print(f"appended run #{len(history)} → {args.output}")
    ok = (
        all(r["tokens_lost"] == 0 for r in rows)
        and rows[1]["chatty_itl_p95_improved"]
        and rows[1]["handoff_requests"] > 0
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
