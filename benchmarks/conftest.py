"""Shared helpers for the figure-reproduction benchmarks.

Every benchmark regenerates one table/figure of the paper's evaluation on
the simulated GPU, prints the rows (run with ``-s`` to see them), records
them in ``benchmark.extra_info`` and writes a CSV under
``benchmarks/results/``.  Assertions pin the paper's *qualitative* shape
(who wins, roughly by how much); absolute numbers are simulator units.
"""

from __future__ import annotations

import csv
import os
from typing import Dict, List, Sequence

import numpy as np
import pytest

from repro.sparse import AttentionMapping, kv_from_page_table

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def make_paged_mapping(kv_lens, qo_lens, page_size=16, causal=True):
    """Lay requests out contiguously in a fresh page pool."""
    kv_lens = [int(x) for x in kv_lens]
    qo_lens = [int(x) for x in qo_lens]
    pool = sum(-(-l // page_size) for l in kv_lens)
    pages, c = [], 0
    for l in kv_lens:
        n = -(-l // page_size)
        pages.append(np.arange(c, c + n))
        c += n
    kv = kv_from_page_table(pages, kv_lens, page_size, pool)
    qo_indptr = np.concatenate([[0], np.cumsum(qo_lens)]).astype(np.int64)
    return AttentionMapping(qo_indptr, kv, causal=causal), pool * page_size


def emit_table(name: str, header: Sequence[str], rows: List[Sequence], benchmark=None):
    """Print a figure table, save it as CSV, and attach it to the benchmark."""
    widths = [
        max(len(str(h)), max((len(_fmt(r[i])) for r in rows), default=0))
        for i, h in enumerate(header)
    ]
    print(f"\n=== {name} ===")
    print("  ".join(str(h).rjust(w) for h, w in zip(header, widths)))
    for r in rows:
        print("  ".join(_fmt(v).rjust(w) for v, w in zip(r, widths)))

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.csv"), "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(header)
        writer.writerows([[_fmt(v) for v in r] for r in rows])

    if benchmark is not None:
        benchmark.extra_info[name] = [dict(zip(header, map(_fmt, r))) for r in rows]


def _fmt(v) -> str:
    if isinstance(v, float):
        return f"{v:.4g}"
    return str(v)


@pytest.fixture
def once(benchmark):
    """Run the experiment exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
