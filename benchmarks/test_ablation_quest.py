"""Ablation: Quest-style query-aware KV sparsity on the block-sparse kernel.

Paper §5.4: "challenges like dynamic KV-Cache sparsity persist, as seen in
Quest.  Here, FlashInfer's block sparse kernel remains effective."  The
pruned page set simply becomes the step's gather structure; this ablation
sweeps the page budget for long-context decode and reports the simulated
attention-time reduction alongside the output perturbation on random data
(a worst case for pruning — real attention mass is far more concentrated).
"""

import numpy as np
import pytest

from conftest import emit_table, make_paged_mapping
from repro import A100_40G, BatchAttentionWrapper, WorkspaceBuffer
from repro.core import HeadConfig, VANILLA
from repro.sparse import PageSummaryStore, quest_mapping

HEADS = HeadConfig(8, 2, 64)
PAGE = 16
BATCH = 8
KV_LEN = 8192  # 512 pages per request


def run_experiment():
    rng = np.random.default_rng(0)
    mapping, slots = make_paged_mapping([KV_LEN] * BATCH, [1] * BATCH, PAGE)
    k_pool = rng.standard_normal((slots, 2, 64)).astype(np.float32)
    v_pool = rng.standard_normal((slots, 2, 64)).astype(np.float32)
    store = PageSummaryStore(slots // PAGE, PAGE, 2, 64)
    for r in range(BATCH):
        store.rebuild_from_pool(k_pool, mapping.kv.group_blocks(r), KV_LEN)
    q = rng.standard_normal((BATCH, 8, 64))

    def attn(m, compute):
        w = BatchAttentionWrapper(
            VANILLA, HEADS, WorkspaceBuffer(1 << 29), A100_40G, avg_qo_len=1
        )
        w.plan(m)
        out, _, rep = w.run(q if compute else None, k_pool, v_pool, compute=compute)
        return out, rep

    full_out, full_rep = attn(mapping, True)
    rows = [("full", KV_LEN // PAGE, full_rep.makespan * 1e6, 1.0, 0.0)]
    for budget in (256, 64, 16):
        pruned = quest_mapping(mapping.kv, q, store, page_budget=budget)
        out, rep = attn(pruned, True)
        err = float(np.abs(out - full_out).max())
        rows.append(
            (f"budget={budget}", budget, rep.makespan * 1e6,
             full_rep.makespan / rep.makespan, err)
        )
    return rows


def test_ablation_quest(once, benchmark):
    rows = once(run_experiment)
    emit_table(
        "ablation_quest_sparsity",
        ["config", "pages_per_req", "makespan_us", "speedup", "max_abs_err"],
        rows,
        benchmark,
    )
    by = {r[0]: r for r in rows}
    # Attention time drops roughly with the page budget.
    assert by["budget=64"][3] > 3.0
    assert by["budget=16"][3] > by["budget=64"][3] > by["budget=256"][3]
    # Pruning is approximate — error is non-zero but bounded on unit data.
    assert 0 < by["budget=64"][4] < 1.0
