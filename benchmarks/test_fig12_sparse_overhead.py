"""Figure 12 (Appendix B): overhead of sparse gathering.

Compares dense (contiguous ragged) KV against page-size-1 (vector-sparse)
paged KV for prefill (achieved TFLOPs) and decode (achieved bandwidth), on
both the FA2 template (A100) and the FA3 template (H100, where dense loads
use TMA but sparse gathers fall back to async copies with register
pressure).  32 query and KV heads, head dim 128, batch × seqlen sweep.

Paper shape: decode gap negligible (≈1%); prefill gap ≈10%, larger on FA3
than FA2.
"""

import numpy as np
import pytest

from conftest import emit_table, make_paged_mapping
from repro import A100_40G, BatchAttentionWrapper, H100_80G, WorkspaceBuffer
from repro.core import HeadConfig, VANILLA

HEADS = HeadConfig(32, 32, 128)
SWEEP = [(1, 4096), (4, 2048), (16, 1024), (64, 512)]


def makespan(gpu, batch, seqlen, decode, sparse):
    qo = [1] * batch if decode else [seqlen] * batch
    page_size = 1 if sparse else seqlen  # dense: one contiguous block
    mapping, _ = make_paged_mapping([seqlen] * batch, qo, page_size)
    w = BatchAttentionWrapper(
        VANILLA, HEADS, WorkspaceBuffer(1 << 30), gpu,
        avg_qo_len=1 if decode else seqlen,
        sparse_gather=sparse,
    )
    w.plan(mapping)
    _, _, report = w.run(None, compute=False)
    return report.makespan


def run_experiment():
    rows = []
    for gpu, template in ((A100_40G, "fa2"), (H100_80G, "fa3")):
        for phase in ("decode", "prefill"):
            for batch, seqlen in SWEEP:
                dense = makespan(gpu, batch, seqlen, phase == "decode", sparse=False)
                sparse = makespan(gpu, batch, seqlen, phase == "decode", sparse=True)
                overhead = sparse / dense - 1.0
                rows.append((template, phase, batch, seqlen, overhead * 100))
    return rows


def test_fig12_sparse_overhead(once, benchmark):
    rows = once(run_experiment)
    emit_table(
        "fig12_sparse_gather_overhead",
        ["template", "phase", "batch", "seqlen", "overhead_%"],
        rows,
        benchmark,
    )
    decode = [r[4] for r in rows if r[1] == "decode"]
    fa2_prefill = [r[4] for r in rows if r[1] == "prefill" and r[0] == "fa2"]
    fa3_prefill = [r[4] for r in rows if r[1] == "prefill" and r[0] == "fa3"]

    # Decode: the gather overhead is negligible (paper: within 1%).
    assert max(decode) < 3.0
    # Prefill: a visible but bounded gap (paper: ≈10%), FA3 > FA2 because
    # sparse gathers cannot use TMA and pay register pressure.
    assert 0.0 <= np.mean(fa2_prefill) < 12.0
    assert np.mean(fa3_prefill) > np.mean(fa2_prefill)
    assert np.mean(fa3_prefill) < 20.0
