"""Figure 10: parallel generation with composable formats (paper §4.4).

The MLC-Engine-analog serving engine under a prefix-caching configuration:
each request generates ``n`` parallel completions (forked decode streams
sharing the prompt's KV pages), with the composable-format decomposition
toggled on/off.  Request rate 16, Llama-3.1-8B (TP1) and 70B (TP4) on H100.

Workload note (DESIGN.md): parallel generation is used for agent-style
fan-out over substantial prompts, so this benchmark's ShareGPT-like
marginals weight prompts more heavily (mean ≈ 650 tokens) than the raw
chat distribution — with very short prompts the shared-prefix traffic is
too small a share of a decode step for either system to notice.

Paper shape: no benefit at n ≤ 2, consistent ITL/TTFT speedups for
moderate n, and a plateau once attention stops dominating.  (The paper's
peak lands at n=4; in our reproduction the gain ramps through n=4 and
plateaus around n=16–32 — see EXPERIMENTS.md.)
"""

import numpy as np
import pytest

from conftest import emit_table
from repro.core import HeadConfig
from repro.gpu import H100_80G
from repro.serving import (
    EngineConfig,
    FlashInferBackend,
    LLAMA_3_1_8B,
    LLAMA_3_1_70B,
    ServingEngine,
)
from repro.serving.workload import Request, poisson_arrivals
from repro.utils.rng import new_rng

N_VALUES = (1, 2, 4, 8, 16, 32)
RATE = 16.0
NUM_REQUESTS = 24


def agent_workload(n_req, rate, seed, n):
    """ShareGPT-like lengths reweighted toward long prompts (agent fan-out)."""
    rng = new_rng(seed)
    arrivals = poisson_arrivals(n_req, rate, rng)
    prompts = np.clip(np.rint(rng.lognormal(6.5, 0.6, n_req)), 64, 4096).astype(int)
    outputs = np.clip(np.rint(rng.lognormal(5.0, 0.6, n_req)), 16, 1024).astype(int)
    return [
        Request(float(a), int(p), int(o), n=n)
        for a, p, o in zip(arrivals, prompts, outputs)
    ]


def run_experiment():
    rows = []
    for model, tp in ((LLAMA_3_1_8B, 1), (LLAMA_3_1_70B, 4)):
        heads = HeadConfig(
            model.num_qo_heads // tp, max(model.num_kv_heads // tp, 1), model.head_dim
        )
        for n in N_VALUES:
            requests = agent_workload(NUM_REQUESTS, RATE, 3, n)
            summaries = {}
            for composable in (False, True):
                backend = FlashInferBackend(heads, H100_80G, composable=composable)
                engine = ServingEngine(
                    model, backend, H100_80G,
                    EngineConfig(
                        max_running=1024, composable=composable,
                        num_pool_pages=1 << 18, tensor_parallel=tp,
                    ),
                )
                summaries[composable] = engine.run(requests).summary()
            d_itl = 1 - summaries[True]["median_itl"] / summaries[False]["median_itl"]
            d_ttft = 1 - summaries[True]["median_ttft"] / summaries[False]["median_ttft"]
            rows.append(
                (model.name, n,
                 summaries[False]["median_itl"] * 1e3,
                 summaries[True]["median_itl"] * 1e3,
                 d_itl * 100, d_ttft * 100)
            )
    return rows


def test_fig10_parallel_generation(once, benchmark):
    rows = once(run_experiment)
    emit_table(
        "fig10_parallel_generation",
        ["model", "n", "single_itl_ms", "composable_itl_ms",
         "itl_reduction_%", "ttft_reduction_%"],
        rows,
        benchmark,
    )
    by = {(r[0], r[1]): r for r in rows}

    for model in ("llama-3.1-8b", "llama-3.1-70b"):
        # n=1: a single stream has nothing to share.
        assert abs(by[(model, 1)][4]) < 2.0
        # Small n barely benefits; moderate n benefits consistently.
        assert by[(model, 2)][4] < by[(model, 8)][4]
        for n in (8, 16, 32):
            assert by[(model, n)][4] > 0, f"{model} n={n} shows no composable gain"

    # The 8B model reaches a double-digit ITL reduction in the moderate-n
    # band (the paper reports 13.7% at its peak).
    assert max(by[("llama-3.1-8b", n)][4] for n in (4, 8, 16)) > 10.0
    # 70B benefits too (paper: 17.4% peak).
    assert max(by[("llama-3.1-70b", n)][4] for n in (8, 16, 32)) > 10.0
