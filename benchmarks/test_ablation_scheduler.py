"""Ablation: load-balanced split-KV scheduling (paper §3.3.1, Algorithm 1).

Runs the same skewed decode batch through (a) the full scheduler, (b) the
scheduler without KV splitting, and (c) naive round-robin assignment —
isolating how much of FlashInfer's win comes from splitting vs balancing.
"""

import numpy as np
import pytest

from conftest import emit_table, make_paged_mapping
from repro import A100_40G, BatchAttentionWrapper, WorkspaceBuffer
from repro.core import HeadConfig, VANILLA, plan_unbalanced
from repro.serving import zipf_lengths

HEADS = HeadConfig(32, 8, 128)
BATCH = 16


def makespan(kv_lens, mode):
    mapping, _ = make_paged_mapping(kv_lens, [1] * BATCH)
    w = BatchAttentionWrapper(
        VANILLA, HEADS, WorkspaceBuffer(1 << 29), A100_40G,
        avg_qo_len=1, split_kv=(mode == "balanced+split"),
    )
    if mode == "round-robin":
        # Bypass the balanced scheduler entirely.
        plan = plan_unbalanced(
            mapping.qo_lens, mapping.kv.kv_lens, w._sched_q_tile, w.num_ctas,
            num_kv_heads=HEADS.num_kv_heads,
        )
        w._ensure_sections(mapping.num_groups, mapping.total_qo)
        w._write_plan(plan)
        w._mapping = mapping
        w._params = VANILLA.bind_params({})
        _, _, report = w.run(None, compute=False)
        return report.makespan
    w.plan(mapping)
    _, _, report = w.run(None, compute=False)
    return report.makespan


def run_experiment():
    rows = []
    for name, lens in [
        ("uniform", [1024] * BATCH),
        ("zipf", zipf_lengths(BATCH, 1024, seed=0, a=1.5)),
        ("one-giant", [16384] + [256] * (BATCH - 1)),
    ]:
        full = makespan(lens, "balanced+split")
        nosplit = makespan(lens, "balanced-nosplit")
        rr = makespan(lens, "round-robin")
        rows.append((name, full * 1e6, nosplit * 1e6, rr * 1e6,
                     nosplit / full, rr / full))
    return rows


def test_ablation_scheduler(once, benchmark):
    rows = once(run_experiment)
    emit_table(
        "ablation_scheduler",
        ["workload", "full_us", "no_split_us", "round_robin_us",
         "no_split_slowdown", "round_robin_slowdown"],
        rows,
        benchmark,
    )
    by = {r[0]: r for r in rows}
    # Uniform batches barely need the machinery.
    assert by[("uniform")][4] < 1.15
    # A single giant KV is the split-KV showcase: without splitting, one
    # CTA drags the whole step (flash-decoding's raison d'être).
    assert by[("one-giant")][4] > 2.0
    # Balanced assignment beats round-robin under skew.
    assert by[("zipf")][5] >= by[("zipf")][4] * 0.99
