"""Ablation: fp8 KV-cache (paper Appendix F).

Mixed-precision attention stores K/V in fp8 e4m3 while Q/O stay fp16,
halving KV traffic.  Decode is KV-bandwidth-bound, so long-context decode
should approach a 2× step-time reduction; accuracy is covered by
``tests/test_variants_fp8.py``.
"""

import numpy as np
import pytest

from conftest import emit_table, make_paged_mapping
from repro import A100_40G, BatchAttentionWrapper, WorkspaceBuffer
from repro.core import HeadConfig, VANILLA
from repro.utils.dtypes import StorageDType

HEADS = HeadConfig(32, 8, 128)
BATCH = 16


def makespan(kv_len, dtype):
    mapping, _ = make_paged_mapping([kv_len] * BATCH, [1] * BATCH)
    w = BatchAttentionWrapper(
        VANILLA, HEADS, WorkspaceBuffer(1 << 29), A100_40G,
        avg_qo_len=1, kv_dtype=dtype,
    )
    w.plan(mapping)
    _, _, report = w.run(None, compute=False)
    return report.makespan


def run_experiment():
    rows = []
    for kv_len in (512, 2048, 8192, 32768):
        f16 = makespan(kv_len, StorageDType.FP16)
        f8 = makespan(kv_len, StorageDType.FP8_E4M3)
        rows.append((kv_len, f16 * 1e6, f8 * 1e6, f16 / f8))
    return rows


def test_ablation_fp8(once, benchmark):
    rows = once(run_experiment)
    emit_table(
        "ablation_fp8_kv",
        ["kv_len", "fp16_us", "fp8_us", "speedup"],
        rows,
        benchmark,
    )
    speedups = {r[0]: r[3] for r in rows}
    # The speedup grows with context length toward the 2× traffic bound.
    assert speedups[32768] > speedups[512]
    assert speedups[32768] > 1.6
    assert all(s < 2.1 for s in speedups.values())
