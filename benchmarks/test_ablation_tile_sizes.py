"""Ablation: query tile-size selection for decode (paper §3.2.2).

Forces each compiled query tile size on a GQA decode batch and compares
against the heuristic's pick ("minimal query tile size meeting or
exceeding the average fused query length").  Oversized tiles waste padded
tensor-core work — the FlashAttention-decode problem the heuristic fixes.
"""

import numpy as np
import pytest

from conftest import emit_table, make_paged_mapping
from repro import A100_40G, BatchAttentionWrapper, WorkspaceBuffer
from repro.core import HeadConfig, VANILLA
from repro.core.tiles import Q_TILE_CANDIDATES, select_q_tile

HEADS = HeadConfig(32, 8, 128)  # GQA group size 4 → fused decode length 4
BATCH = 16
KV_LEN = 1024


def makespan_for_tile(q_tile):
    mapping, _ = make_paged_mapping([KV_LEN] * BATCH, [1] * BATCH)
    w = BatchAttentionWrapper(
        VANILLA, HEADS, WorkspaceBuffer(1 << 29), A100_40G,
        avg_qo_len=1, q_tile=q_tile,
    )
    w.plan(mapping)
    _, _, report = w.run(None, compute=False)
    return report.makespan


def run_experiment():
    heuristic = select_q_tile(1 * HEADS.group_size)
    rows = []
    for q_tile in Q_TILE_CANDIDATES:
        ms = makespan_for_tile(q_tile)
        rows.append((q_tile, ms * 1e6, q_tile == heuristic))
    return rows, heuristic


def test_ablation_tile_sizes(once, benchmark):
    rows, heuristic = once(run_experiment)
    emit_table(
        "ablation_decode_tile_sizes",
        ["q_tile", "makespan_us", "heuristic_choice"],
        rows,
        benchmark,
    )
    by = {r[0]: r[1] for r in rows}
    assert heuristic == 16  # fused length 4 → minimal covering tile
    best = min(by.values())
    # The heuristic's choice is within 5% of the best compiled tile...
    assert by[heuristic] <= 1.05 * best
    # ...and the biggest tile (FA's prefill tile pressed into decode
    # service) is clearly worse than the heuristic's pick.
    assert by[128] > 1.10 * by[heuristic]
