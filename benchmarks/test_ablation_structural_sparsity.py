"""Ablation: structural block sparsity vs mask-functor sparsity (§3.1 vs §3.2.3).

The same sparse attention pattern can be expressed two ways:

* **structurally** — zero blocks are absent from the BSR gather, so the
  kernel never loads or computes them (the paper's preferred path for
  importance masks / tree attention at block granularity);
* **as a logits mask** — the kernel processes the full KV and a mask
  functor discards scores (FlexAttention-style, necessary for patterns
  finer than a block).

At equal semantics the structural form should win by roughly the density
factor in both traffic and time; the mask form pays full dense cost.
"""

import numpy as np
import pytest

from conftest import emit_table
from repro import A100_40G, BatchAttentionWrapper, WorkspaceBuffer
from repro.core import HeadConfig, VANILLA
from repro.sparse import BSRMatrix, mapping_from_bsr
from repro.variants import make_custom_mask

HEADS = HeadConfig(8, 8, 64)
BR, BC = 16, 16
N_BROWS, N_BCOLS = 32, 128  # 512 queries × 2048 KV


def build_pattern(density, rng):
    blocks = rng.random((N_BROWS, N_BCOLS)) < density
    blocks[:, 0] = True
    return blocks


def structural_run(blocks):
    mask = np.kron(blocks, np.ones((BR, BC), dtype=bool))
    bsr = BSRMatrix.from_dense_mask(mask, (BR, BC))
    mapping = mapping_from_bsr(bsr, causal=False)
    w = BatchAttentionWrapper(VANILLA, HEADS, WorkspaceBuffer(1 << 29), A100_40G,
                              avg_qo_len=BR)
    w.plan(mapping)
    _, _, rep = w.run(None, compute=False)
    return rep


def masked_run(blocks):
    mask = np.kron(blocks, np.ones((BR, BC), dtype=bool))
    variant = make_custom_mask(mask)
    full = np.ones_like(blocks)
    full_mask = np.kron(full, np.ones((BR, BC), dtype=bool))
    bsr = BSRMatrix.from_dense_mask(full_mask, (BR, BC))
    mapping = mapping_from_bsr(bsr, causal=False)
    w = BatchAttentionWrapper(variant, HEADS, WorkspaceBuffer(1 << 29), A100_40G,
                              avg_qo_len=BR)
    w.plan(mapping)
    _, _, rep = w.run(None, compute=False)
    return rep


def run_experiment():
    rng = np.random.default_rng(0)
    rows = []
    for density in (1.0, 0.5, 0.25, 0.125):
        blocks = build_pattern(density, rng)
        s = structural_run(blocks)
        m = masked_run(blocks)
        rows.append(
            (density, s.makespan * 1e6, m.makespan * 1e6,
             m.makespan / s.makespan, m.total_bytes / s.total_bytes)
        )
    return rows


def test_ablation_structural_sparsity(once, benchmark):
    rows = once(run_experiment)
    emit_table(
        "ablation_structural_sparsity",
        ["density", "structural_us", "masked_us", "time_ratio", "traffic_ratio"],
        rows,
        benchmark,
    )
    by = {r[0]: r for r in rows}
    # At full density the two are equivalent.
    assert by[1.0][3] == pytest.approx(1.0, rel=0.1)
    # Structural sparsity wins increasingly as density drops; the mask
    # variant's cost is density-independent.
    assert by[0.25][3] > 2.0
    assert by[0.125][3] > by[0.25][3] > by[0.5][3]
    assert by[0.125][4] > 4.0
