"""Figure 9: StreamingLLM with fused RoPE+attention kernels (paper §4.3).

Top panel: end-to-end inter-token latency of StreamingLLM (Vicuna-13B,
MT-Bench-style single-stream decode, A100) with FlashInfer's fused kernel
vs the unfused pipeline (standalone RoPE kernel + FlashAttention) vs the
original implementation, sweeping the recent window size.

Bottom panel: kernel-level bandwidth utilization of the fused kernel vs the
unfused pipeline.

Paper shape: 28–30% e2e latency reduction "under different settings (by
changing the recent window size)" — our sweep brackets that band — and a
1.6–3.7× kernel bandwidth-utilization advantage for fusion.
"""

import numpy as np
import pytest

from conftest import emit_table
from repro import A100_40G, BatchAttentionWrapper, WorkspaceBuffer
from repro.baselines import FlashAttentionBaseline, unfused_streaming_step
from repro.core import HeadConfig
from repro.kvcache import StreamingKVCache
from repro.serving import VICUNA_13B
from repro.variants import FUSED_ROPE

MODEL = VICUNA_13B
HEADS = HeadConfig(MODEL.num_qo_heads, MODEL.num_kv_heads, MODEL.head_dim)
GPU = A100_40G
NUM_SINKS = 4
GEMM_EFF = 0.85


def saturated_mapping(window):
    cache = StreamingKVCache(1, NUM_SINKS, window, HEADS.num_kv_heads, HEADS.head_dim)
    cache.stream_lens[0] = NUM_SINKS + window + 100  # cache fully rolled over
    return cache.mapping([0], [1])


def attention_reports(window):
    """Per-layer attention makespans: fused / unfused / original impl."""
    mapping = saturated_mapping(window)
    w = BatchAttentionWrapper(
        FUSED_ROPE, HEADS, WorkspaceBuffer(1 << 28), GPU, avg_qo_len=1
    )
    w.plan(mapping)
    _, _, fused = w.run(None, compute=False)
    fa = FlashAttentionBaseline(HEADS, GPU, version="fa2")
    _, fa_rep = fa.run(mapping, decode=True, sparse_gather=False)
    cache_len = NUM_SINKS + window
    unfused = unfused_streaming_step(fa_rep, cache_len, 1, HEADS, GPU).total
    original = unfused_streaming_step(
        fa_rep, cache_len, 1, HEADS, GPU, original_impl=True
    ).total
    return fused, unfused, original


def itl_ms(attn_makespan, graphed=True):
    """Assemble one decode step's latency around the attention pipeline."""
    nonattn = MODEL.layer_nonattn_time(1, GPU, GEMM_EFF)
    step = MODEL.num_layers * (attn_makespan + nonattn)
    step += MODEL.lm_head_time(1, GPU, GEMM_EFF)
    step += (
        GPU.kernel_launch_overhead
        if graphed
        else MODEL.num_layers * 6 * GPU.kernel_launch_overhead
    )
    return step * 1e3


def run_e2e():
    rows = []
    for window in (1024, 4096, 8192, 16384):
        fused, unfused, original = attention_reports(window)
        f = itl_ms(fused.makespan)
        u = itl_ms(unfused.makespan)
        o = itl_ms(original.makespan, graphed=False)
        rows.append((window, f, u, o, (1 - f / u) * 100, (1 - f / o) * 100))
    return rows


def run_kernel_bandwidth():
    rows = []
    for window in (256, 512, 1024, 2048, 4096):
        fused, unfused, _ = attention_reports(window)
        cache_len = NUM_SINKS + window
        useful = (
            cache_len * HEADS.num_kv_heads * HEADS.head_dim * 2 * 2
            + 2 * HEADS.num_qo_heads * HEADS.head_dim * 2 * 2
        )
        bw_f = useful / fused.makespan / GPU.peak_bandwidth_bytes
        bw_u = useful / unfused.makespan / GPU.peak_bandwidth_bytes
        rows.append((window, bw_f, bw_u, bw_f / bw_u))
    return rows


def test_fig9_e2e_latency(once, benchmark):
    rows = once(run_e2e)
    emit_table(
        "fig9_streaming_llm_e2e",
        ["window", "fused_itl_ms", "unfused_itl_ms", "original_itl_ms",
         "reduction_vs_unfused_%", "reduction_vs_original_%"],
        rows,
        benchmark,
    )
    reductions = [r[4] for r in rows]
    # Fusion always wins, the win grows with the window, and the sweep
    # brackets the paper's 28–30% band.
    assert all(r > 0 for r in reductions)
    assert reductions == sorted(reductions)
    assert min(reductions) < 28 < max(reductions)
    # The original implementation is strictly the slowest configuration.
    for _, f, u, o, *_ in rows:
        assert o > u > f


def test_fig9_kernel_bandwidth(once, benchmark):
    rows = once(run_kernel_bandwidth)
    emit_table(
        "fig9_fused_rope_bandwidth",
        ["window", "fused_bw_util", "unfused_bw_util", "ratio"],
        rows,
        benchmark,
    )
    ratios = [r[3] for r in rows]
    # Paper: fused RoPE reaches 1.6–3.7× the unfused pipeline's bandwidth.
    assert min(ratios) > 1.5
    assert max(ratios) < 4.0
