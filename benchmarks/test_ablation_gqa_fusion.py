"""Ablation: GQA head-group fusion (paper Appendix A, Figure 11).

With fusion, one shared-memory load of a KV head's tile serves all ``g``
query heads of its group; without it, every query head gathers the same KV
separately.  Decode traffic should drop by ≈ the group size.
"""

import numpy as np
import pytest

from conftest import emit_table, make_paged_mapping
from repro import A100_40G, BatchAttentionWrapper, WorkspaceBuffer
from repro.core import HeadConfig, VANILLA

BATCH = 16
KV_LEN = 2048
NUM_QO_HEADS = 32


def run_one(group_size, fuse):
    heads = HeadConfig(NUM_QO_HEADS, NUM_QO_HEADS // group_size, 128)
    mapping, _ = make_paged_mapping([KV_LEN] * BATCH, [1] * BATCH)
    w = BatchAttentionWrapper(
        VANILLA, heads, WorkspaceBuffer(1 << 29), A100_40G,
        avg_qo_len=1, fuse_head_groups=fuse,
    )
    w.plan(mapping)
    _, _, report = w.run(None, compute=False)
    return report


def run_experiment():
    rows = []
    for g in (1, 2, 4, 8):
        fused = run_one(g, True)
        unfused = run_one(g, False)
        rows.append(
            (g, fused.makespan * 1e6, unfused.makespan * 1e6,
             unfused.total_bytes / fused.total_bytes,
             unfused.makespan / fused.makespan)
        )
    return rows


def test_ablation_gqa_fusion(once, benchmark):
    rows = once(run_experiment)
    emit_table(
        "ablation_gqa_fusion",
        ["group_size", "fused_us", "unfused_us", "traffic_ratio", "speedup"],
        rows,
        benchmark,
    )
    by = {r[0]: r for r in rows}
    # MHA (g=1): fusion is a no-op.
    assert by[1][4] == pytest.approx(1.0, rel=0.02)
    # KV traffic scales with the group size when fusion is off.
    for g in (2, 4, 8):
        assert by[g][3] > 0.8 * g
    # And the decode step gets faster with fusion, increasingly with g.
    assert by[4][4] > 1.5
    assert by[8][4] > by[4][4] > by[2][4]
