"""Ablation: SM partitioning for kernel overlap (paper Appendix E).

Nanoflow overlaps GEMM, attention and communication by assigning each a
fixed SM budget; FlashInfer supports this by taking the SM count through
the plan path and balancing tiles over the restricted grid.  This ablation
co-schedules a decode-attention kernel with a compute-bound GEMM: serial
execution uses all SMs for each in turn; overlapped execution gives each a
partition and runs them concurrently.

Expected shape: when the two kernels stress *different* resources,
overlap wins — bandwidth-bound decode attention saturates HBM from a small
SM partition, so handing the remaining SMs to the compute-bound GEMM
shortens the step even though neither kernel got faster.
"""

import numpy as np
import pytest

from conftest import emit_table, make_paged_mapping
from repro import A100_40G, BatchAttentionWrapper, WorkspaceBuffer
from repro.core import HeadConfig, VANILLA
from repro.gpu import PersistentKernelExecutor, TileCost

HEADS = HeadConfig(32, 8, 128)
GPU = A100_40G
BATCH = 64
KV_LEN = 4096


def attention_time(sm_limit):
    mapping, _ = make_paged_mapping([KV_LEN] * BATCH, [1] * BATCH)
    w = BatchAttentionWrapper(
        VANILLA, HEADS, WorkspaceBuffer(1 << 30), GPU, avg_qo_len=1,
        sm_limit=sm_limit,
    )
    w.plan(mapping)
    _, _, report = w.run(None, compute=False)
    return report.makespan


def gemm_time(num_sms, flops=2e11):
    """A compute-bound GEMM slice on ``num_sms`` SMs (e.g. the MLP)."""
    exe = PersistentKernelExecutor(GPU)
    per_sm = TileCost(flops=flops / num_sms, padded_flops=flops / num_sms,
                      bytes_read=1e6 / num_sms)
    return exe.run_persistent([[per_sm] for _ in range(num_sms)]).makespan


def run_experiment():
    full = GPU.num_sms
    rows = []
    serial = attention_time(full) + gemm_time(full)
    rows.append(("serial", full, full, attention_time(full) * 1e6,
                 gemm_time(full) * 1e6, serial * 1e6))
    for attn_sms in (27, 54, 81):
        gemm_sms = full - attn_sms
        a = attention_time(attn_sms)
        g = gemm_time(gemm_sms)
        overlapped = max(a, g)
        rows.append((f"overlap_{attn_sms}sm", attn_sms, gemm_sms,
                     a * 1e6, g * 1e6, overlapped * 1e6))
    return rows


def test_ablation_sm_overlap(once, benchmark):
    rows = once(run_experiment)
    emit_table(
        "ablation_sm_overlap",
        ["config", "attn_sms", "gemm_sms", "attn_us", "gemm_us", "step_us"],
        rows,
        benchmark,
    )
    by = {r[0]: r for r in rows}
    serial = by["serial"][5]
    best = min(r[5] for r in rows[1:])
    # Some partition beats serial execution (the Appendix-E payoff).
    assert best < 0.9 * serial
    # The enabler: bandwidth-bound decode attention barely slows on a
    # quarter of the SMs (27 SMs already saturate HBM), freeing the rest
    # for the compute-bound GEMM.
    assert by["overlap_27sm"][3] < 1.1 * by["serial"][3]
    assert by["overlap_27sm"][4] < by["overlap_54sm"][4]
