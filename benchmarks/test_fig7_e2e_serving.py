"""Figure 7: end-to-end LLM serving latency (paper §4.1).

Median inter-token latency (ITL) and time-to-first-token (TTFT) for the
serving engine with three attention backends — FlashInfer, the Triton
analog, and the TensorRT-LLM analog — on Llama-3.1-8B (1×H100, TP1) and
Llama-3.1-70B (4×H100, TP4), over ShareGPT-like and Variable workloads at
request rates near the paper's P99-TTFT ≈ 200 ms operating point.

Paper shape: 29–69% ITL reduction vs the Triton backend; competitive with
TRT-LLM on Variable; TRT-LLM somewhat ahead on ShareGPT TTFT (better
non-attention kernels/allreduce), especially for 70B.
"""

import pytest

from conftest import emit_table
from repro.core import HeadConfig
from repro.gpu import H100_80G
from repro.serving import (
    EngineConfig,
    FlashInferBackend,
    LLAMA_3_1_8B,
    LLAMA_3_1_70B,
    ServingEngine,
    TritonBackend,
    TRTLLMBackend,
    sharegpt_workload,
    variable_workload,
)

CONFIGS = [
    # (model, tensor_parallel, workload name, workload factory)
    (LLAMA_3_1_8B, 1, "sharegpt", lambda: sharegpt_workload(240, 300.0, seed=0)),
    (LLAMA_3_1_8B, 1, "variable", lambda: variable_workload(120, 28.0, seed=0)),
    (LLAMA_3_1_70B, 4, "sharegpt", lambda: sharegpt_workload(160, 90.0, seed=0)),
    (LLAMA_3_1_70B, 4, "variable", lambda: variable_workload(80, 8.0, seed=0)),
]

BACKENDS = [FlashInferBackend, TritonBackend, TRTLLMBackend]


def run_experiment():
    rows = []
    for model, tp, wname, factory in CONFIGS:
        heads = HeadConfig(
            model.num_qo_heads // tp, max(model.num_kv_heads // tp, 1), model.head_dim
        )
        requests = factory()
        for make in BACKENDS:
            backend = make(heads, H100_80G)
            engine = ServingEngine(
                model, backend, H100_80G,
                EngineConfig(max_running=512, tensor_parallel=tp),
            )
            s = engine.run(requests).summary()
            rows.append(
                (model.name, wname, backend.name,
                 s["median_itl"] * 1e3, s["median_ttft"] * 1e3, s["p99_ttft"] * 1e3)
            )
    return rows


def test_fig7_e2e_serving(once, benchmark):
    rows = once(run_experiment)
    emit_table(
        "fig7_e2e_serving",
        ["model", "workload", "backend", "median_itl_ms", "median_ttft_ms", "p99_ttft_ms"],
        rows,
        benchmark,
    )
    by = {(r[0], r[1], r[2]): r for r in rows}
    for model, tp, wname, _ in CONFIGS:
        fi = by[(model.name, wname, "flashinfer")]
        tr = by[(model.name, wname, "triton")]
        trt = by[(model.name, wname, "trtllm")]
        # FlashInfer reduces ITL vs the Triton backend in every setting.
        reduction = 1 - fi[3] / tr[3]
        assert reduction > 0.10, f"{model.name}/{wname}: only {reduction:.0%} vs Triton"
        # Competitive with TRT-LLM on ITL (within 5%).
        assert fi[3] < 1.05 * trt[3]
        # TRT-LLM's stack advantage shows on TTFT.
        assert trt[4] <= fi[4] * 1.05

    # The 8B Variable setting shows the largest Triton gap (long contexts →
    # attention-dominated), matching the paper's upper band.
    big = 1 - by[("llama-3.1-8b", "variable", "flashinfer")][3] / by[
        ("llama-3.1-8b", "variable", "triton")
    ][3]
    assert big > 0.25
