"""Prefix-cache sweep: cold vs warm prefill work on a shared-prefix workload.

Not a pytest benchmark (no ``test_`` prefix): this is the perf-trajectory
harness for the radix prefix cache + cascade attention path.  It runs one
fixed shared-prefix workload (>70% of prompt tokens shared) through every
(tp, dp) in the sweep, twice per shape — cold cache vs warm (radix cache +
cascade, cache-aware router) — verifies both against the cold single-GPU
token oracle, and appends one timestamped record to ``BENCH_prefix.json``
at the repo root so successive commits build a savings trajectory.

Usage::

    PYTHONPATH=src python benchmarks/bench_prefix.py
    PYTHONPATH=src python benchmarks/bench_prefix.py --requests 32 --rate 80
"""

from __future__ import annotations

import argparse
import dataclasses
import datetime
import json
import os
import subprocess

from repro.cluster import ClusterConfig, ClusterEngine, expected_tokens
from repro.gpu import H100_80G
from repro.serving import EngineConfig, LLAMA_3_1_8B, shared_prefix_workload

SWEEP = [(tp, dp) for tp in (1, 2) for dp in (1, 2)]

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_prefix.json",
)


def prefill_flops(model, tokens: int) -> float:
    """GEMM FLOPs to prefill ``tokens`` prompt tokens (tp-independent)."""
    return model.num_layers * model.layer_gemm_flops(tokens)


def run_sweep(requests, rate, seed, router, topology):
    model = LLAMA_3_1_8B
    workload = shared_prefix_workload(requests, rate, seed=seed)
    total_prompt = sum(r.prompt_len for r in workload)
    shared = sum(r.prefix_len for r in workload)
    print(
        f"  workload: {total_prompt} prompt tokens, "
        f"{shared / total_prompt:.0%} inside a shared prefix"
    )
    warm_engine = EngineConfig(
        max_running=256, chunked_prefill=True, prefix_cache=True,
        composable=True,
    )
    cold_engine = dataclasses.replace(
        warm_engine, prefix_cache=False, composable=False
    )
    oracle = expected_tokens(
        ClusterEngine.from_config(
            ClusterConfig(engine=cold_engine), model=model, gpu=H100_80G
        ).run_reference(workload)
    )
    rows = []
    for tp, dp in SWEEP:
        out = {"tp": tp, "dp": dp, "world": tp * dp}
        for mode, engine_cfg in (("cold", cold_engine), ("warm", warm_engine)):
            cluster = ClusterEngine.from_config(
                ClusterConfig(tp=tp, dp=dp, topology=topology, router=router,
                              engine=engine_cfg),
                model=model, gpu=H100_80G,
            )
            cm = cluster.run(workload)
            divergent, compared = cm.token_divergence(oracle)
            s = cm.summary()
            hit = int(s.get("cluster_radix_hit_tokens", 0))
            out[mode] = {
                "makespan_s": round(cm.total_time, 6),
                "throughput_tok_s": round(cm.throughput_tokens_per_s(), 2),
                "prefill_tokens": total_prompt - hit,
                "prefill_flops": prefill_flops(model, total_prompt - hit),
                "radix_hit_tokens": hit,
                "cascade_steps": int(s.get("cluster_cascade_steps", 0)),
                "cascade_hbm_bytes_saved": s.get(
                    "cluster_cascade_bytes_saved", 0.0
                ),
                "token_divergence": divergent,
                "streams_compared": compared,
            }
        cold, warm = out["cold"], out["warm"]
        out["prefill_flops_saved"] = (
            cold["prefill_flops"] - warm["prefill_flops"]
        )
        out["hbm_bytes_saved"] = warm["cascade_hbm_bytes_saved"]
        rows.append(out)
        print(
            f"  tp={tp} dp={dp}: warm {warm['throughput_tok_s']:8.1f} tok/s "
            f"vs cold {cold['throughput_tok_s']:8.1f}, "
            f"hit {warm['radix_hit_tokens']}/{total_prompt} tokens, "
            f"flops saved {out['prefill_flops_saved']:.3e}, "
            f"divergence {cold['token_divergence'] + warm['token_divergence']}"
            f"/{cold['streams_compared'] + warm['streams_compared']}"
        )
    return rows


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--requests", type=int, default=24)
    ap.add_argument("--rate", type=float, default=40.0)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--router", default="cache-aware")
    ap.add_argument("--topology", default="nvlink")
    ap.add_argument("--output", default=DEFAULT_OUTPUT)
    args = ap.parse_args()

    print(
        f"prefix-cache sweep: {args.requests} shared-prefix requests at "
        f"{args.rate} req/s, {args.router} router, {args.topology} topology"
    )
    rows = run_sweep(args.requests, args.rate, args.seed, args.router,
                     args.topology)
    try:
        commit = subprocess.check_output(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(args.output), text=True,
        ).strip()
    except Exception:
        commit = "unknown"
    record = {
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "commit": commit,
        "workload": {
            "requests": args.requests, "rate": args.rate, "seed": args.seed,
            "router": args.router, "topology": args.topology,
            "model": "llama-3.1-8b",
        },
        "results": rows,
    }
    history = []
    if os.path.exists(args.output):
        with open(args.output) as f:
            history = json.load(f)
    history.append(record)
    with open(args.output, "w") as f:
        json.dump(history, f, indent=2)
        f.write("\n")
    print(f"appended run #{len(history)} → {args.output}")
    ok = all(
        r["cold"]["token_divergence"] == 0
        and r["warm"]["token_divergence"] == 0
        and r["warm"]["radix_hit_tokens"] > 0
        and r["prefill_flops_saved"] > 0
        for r in rows
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
