"""Cluster scaling sweep: tp x dp throughput on a fixed workload.

Not a pytest benchmark (no ``test_`` prefix): this is the perf-trajectory
harness.  It runs one fixed ShareGPT-like workload through every
(tp, dp) in the sweep, verifies token-exactness against the single-GPU
reference for every shape, and appends one timestamped record to
``BENCH_cluster.json`` at the repo root so successive commits build a
throughput trajectory.

Usage::

    PYTHONPATH=src python benchmarks/bench_cluster.py
    PYTHONPATH=src python benchmarks/bench_cluster.py --requests 32 --rate 200
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import subprocess

from repro.cluster import ClusterConfig, ClusterEngine, expected_tokens
from repro.gpu import H100_80G
from repro.serving import EngineConfig, LLAMA_3_1_8B, sharegpt_workload

SWEEP = [(tp, dp) for tp in (1, 2, 4) for dp in (1, 2)]

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_cluster.json",
)


def run_sweep(requests, rate, seed, router, topology):
    model = LLAMA_3_1_8B
    workload = sharegpt_workload(requests, rate, seed=seed)
    reference = ClusterEngine(model, H100_80G, ClusterConfig()).run_reference(
        workload
    )
    expected = expected_tokens(reference)
    rows = []
    for tp, dp in SWEEP:
        cluster = ClusterEngine(
            model, H100_80G,
            ClusterConfig(
                tp=tp, dp=dp, topology=topology, router=router,
                engine=EngineConfig(max_running=256),
            ),
        )
        cm = cluster.run(workload)
        divergent, compared = cm.token_divergence(expected)
        s = cm.summary()
        rows.append({
            "tp": tp,
            "dp": dp,
            "world": tp * dp,
            "makespan_s": round(cm.total_time, 6),
            "throughput_tok_s": round(cm.throughput_tokens_per_s(), 2),
            "output_tokens": int(s["cluster_output_tokens"]),
            "link_bytes": s.get("link_bytes", 0.0),
            "link_utilization": round(s.get("link_utilization", 0.0), 4),
            "token_divergence": divergent,
            "streams_compared": compared,
        })
        print(
            f"  tp={tp} dp={dp}: {rows[-1]['throughput_tok_s']:9.1f} tok/s, "
            f"makespan {rows[-1]['makespan_s'] * 1e3:8.1f} ms, "
            f"divergence {divergent}/{compared}"
        )
    return rows


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--requests", type=int, default=24)
    ap.add_argument("--rate", type=float, default=200.0)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--router", default="least-loaded")
    ap.add_argument("--topology", default="nvlink")
    ap.add_argument("--output", default=DEFAULT_OUTPUT)
    args = ap.parse_args()

    print(
        f"cluster sweep: {args.requests} requests at {args.rate} req/s, "
        f"{args.router} router, {args.topology} topology"
    )
    rows = run_sweep(args.requests, args.rate, args.seed, args.router,
                     args.topology)
    try:
        commit = subprocess.check_output(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(args.output), text=True,
        ).strip()
    except Exception:
        commit = "unknown"
    record = {
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "commit": commit,
        "workload": {
            "requests": args.requests, "rate": args.rate, "seed": args.seed,
            "router": args.router, "topology": args.topology,
            "model": "llama-3.1-8b",
        },
        "results": rows,
    }
    history = []
    if os.path.exists(args.output):
        with open(args.output) as f:
            history = json.load(f)
    history.append(record)
    with open(args.output, "w") as f:
        json.dump(history, f, indent=2)
        f.write("\n")
    print(f"appended run #{len(history)} → {args.output}")
    return 0 if all(r["token_divergence"] == 0 for r in rows) else 1


if __name__ == "__main__":
    raise SystemExit(main())
