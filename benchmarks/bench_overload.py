"""Overload sweep: front door + breakers + brownout vs an unprotected run.

Not a pytest benchmark (no ``test_`` prefix): this is the perf-trajectory
harness for the overload subsystem.  It drives one fixed bursty
multi-tenant workload at a multiple of dp=2 cluster capacity, once
without the overload layer (the control arm) and once per protected
scenario in the sweep, verifies every accepted stream token-exact
against the uncontended single-GPU reference (brownout-clamped streams
must be exact prefixes — ``tokens_lost`` must be 0), and appends one
timestamped record with SLO attainment, admission/breaker/brownout
counters and the attainment delta over the control arm to
``BENCH_overload.json`` at the repo root so successive commits build an
overload-resilience trajectory.

Usage::

    PYTHONPATH=src python benchmarks/bench_overload.py
    PYTHONPATH=src python benchmarks/bench_overload.py --requests 64 --rate 30
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import subprocess

from repro.cluster import ClusterConfig, ClusterEngine, expected_tokens
from repro.cluster.router import BreakerConfig
from repro.faults import FaultPlan
from repro.gpu import H100_80G
from repro.serving import EngineConfig, LLAMA_3_1_8B, bursty_workload
from repro.serving.overload import (
    OverloadConfig,
    overload_token_divergence,
    slo_attainment,
)

#: (label, overload-config overrides).  The first row is the tuned
#: acceptance scenario (the one ``serve --overload`` runs); the others
#: probe the two big levers — a stricter door and no hedging.
SWEEP = [
    ("tuned", {}),
    ("strict-door", {"admit_rate": 12.0, "burst_capacity": 4.0}),
    ("no-hedge", {"hedge": False}),
]

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_overload.json",
)


def make_overload(seed, tenants, **overrides):
    base = dict(
        tenants=tenants, admit_rate=24.0, burst_capacity=8.0,
        max_client_retries=5, retry_budget=2.0, retry_base=0.08,
        seed=seed, slo_ttft=0.4, engage_after=25, anneal_after=60,
        brownout_clamp=32,
        breaker=BreakerConfig(fail_threshold=3, cooldown=0.25,
                              probe_successes=2, pressure_threshold=0.5),
    )
    base.update(overrides)
    return OverloadConfig(**base)


def run_sweep(requests, rate, seed, tenants, burst):
    model = LLAMA_3_1_8B
    workload = bursty_workload(
        requests, rate, seed=seed, tenants=tenants, burst=burst,
        burst_len=0.25, burst_every=0.6,
    )
    offered = len(workload)
    engine_cfg = EngineConfig(
        max_running=16, chunked_prefill=True, composable=True,
        prefill_chunk_size=256,
    )
    reference = ClusterEngine(model, H100_80G, ClusterConfig()).run_reference(
        workload
    )
    expected = expected_tokens(reference)
    slo = make_overload(seed, tenants).slo_ttft
    # Control arm: same trace, same engines, no overload layer.
    baseline = ClusterEngine(
        model, H100_80G, ClusterConfig(dp=2, engine=engine_cfg),
    ).run(workload)
    _, base_frac = slo_attainment(baseline, offered, slo)
    print(f"  {'unprotected':12s}: slo_attainment {base_frac:.3f} (control arm)")
    rows = []
    for label, overrides in SWEEP:
        overload = make_overload(seed, tenants, **overrides)
        cluster = ClusterEngine(
            model, H100_80G,
            ClusterConfig(dp=2, engine=engine_cfg, overload=overload),
            fault_plan=FaultPlan(seed=seed, timeout_rate=0.08),
        )
        cm = cluster.run(workload)
        divergent, compared = overload_token_divergence(cm, expected)
        s = cm.summary()
        rows.append({
            "scenario": label,
            "slo_attainment": round(s["slo_attainment"], 6),
            "slo_attainment_baseline": round(base_frac, 6),
            "slo_delta": round(s["slo_attainment"] - base_frac, 6),
            "admitted": int(s["overload_admitted"]),
            "rejected": int(s["overload_rejected"]),
            "retries": int(s["overload_retries"]),
            "dropped": int(s["overload_dropped"]),
            "breaker_opens": int(s["breaker_open_total"]),
            "breaker_closes": int(s["breaker_close_total"]),
            "brownout_peak_level": int(s["brownout_peak_level"]),
            "brownout_final_level": int(s["brownout_final_level"]),
            "hedged": int(s["hedged_prefills"]),
            "hedge_wins": int(s["hedge_wins"]),
            "makespan_s": round(cm.total_time, 6),
            # The contract: an accepted stream never diverges.
            "tokens_lost": divergent,
            "streams_compared": compared,
        })
        r = rows[-1]
        print(
            f"  {label:12s}: slo_attainment {r['slo_attainment']:.3f} "
            f"({r['slo_delta']:+.3f} vs unprotected), "
            f"{r['rejected']} rejected / {r['dropped']} dropped, "
            f"breakers {r['breaker_opens']} open / {r['breaker_closes']} close, "
            f"brownout peak {r['brownout_peak_level']} "
            f"final {r['brownout_final_level']}, "
            f"tokens_lost {r['tokens_lost']}/{r['streams_compared']}"
        )
    return rows


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--requests", type=int, default=96)
    ap.add_argument("--rate", type=float, default=40.0)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--tenants", type=int, default=4)
    ap.add_argument("--burst", type=float, default=3.0)
    ap.add_argument("--output", default=DEFAULT_OUTPUT)
    args = ap.parse_args()

    print(
        f"overload sweep: {args.requests} bursty requests at "
        f"{args.rate} req/s base rate x {args.burst:g} bursts, "
        f"{args.tenants} tenants, dp=2 round-robin"
    )
    rows = run_sweep(args.requests, args.rate, args.seed, args.tenants,
                     args.burst)
    try:
        commit = subprocess.check_output(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(args.output), text=True,
        ).strip()
    except Exception:
        commit = "unknown"
    record = {
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "commit": commit,
        "workload": {
            "requests": args.requests, "rate": args.rate, "seed": args.seed,
            "tenants": args.tenants, "burst": args.burst,
            "model": "llama-3.1-8b",
        },
        "results": rows,
    }
    history = []
    if os.path.exists(args.output):
        with open(args.output) as f:
            history = json.load(f)
    history.append(record)
    with open(args.output, "w") as f:
        json.dump(history, f, indent=2)
        f.write("\n")
    print(f"appended run #{len(history)} → {args.output}")
    return 0 if all(r["tokens_lost"] == 0 for r in rows) else 1


if __name__ == "__main__":
    raise SystemExit(main())
