"""Ablation: split-KV writethrough (paper Appendix D.2).

Single-chunk tiles write final outputs directly; without the optimization
every tile routes a partial state through the workspace and the contraction
kernel.  Measures the workspace-traffic and contraction savings on a mixed
batch (a few long KVs that split, many short ones that should not).
"""

import numpy as np
import pytest

from conftest import emit_table, make_paged_mapping
from repro import A100_40G, BatchAttentionWrapper, WorkspaceBuffer
from repro.core import HeadConfig, VANILLA
from repro.core.composition import contraction_cost
from repro.core.scheduler import MergeEntry

HEADS = HeadConfig(32, 8, 128)


def run_experiment():
    kv_lens = [8192, 6000] + [512] * 30
    mapping, _ = make_paged_mapping(kv_lens, [1] * len(kv_lens))
    w = BatchAttentionWrapper(
        VANILLA, HEADS, WorkspaceBuffer(1 << 29), A100_40G, avg_qo_len=1
    )
    plan = w.plan(mapping)
    _, _, with_wt = w.run(None, compute=False)

    # Emulate "no writethrough": every work item routes through a partial
    # slot and gets a (possibly single-slot) merge entry.
    items = [item for q in plan.cta_queues for item in q]
    n_direct = sum(1 for item in items if item.partial_slot < 0)
    g = HEADS.group_size
    extra_partial_bytes = 0.0
    extra_merges = []
    for item in items:
        if item.partial_slot < 0:
            rows = item.q_rows * g
            extra_partial_bytes += rows * (HEADS.head_dim + 1) * 4
            extra_merges.append(
                MergeEntry(0, item.group, item.q_start, item.q_rows, item.kv_head, (0,))
            )
    merge_time = sum(
        w.executor.cost_model.tile_time(
            contraction_cost(m, m.q_rows * g, HEADS.head_dim)
        )
        for m in extra_merges
    ) / w.num_ctas
    without_wt_makespan = with_wt.makespan + merge_time
    without_partial_slots = plan.num_partial_slots + n_direct

    return [
        ("with_writethrough", with_wt.makespan * 1e6, plan.num_partial_slots,
         0.0),
        ("without_writethrough", without_wt_makespan * 1e6,
         without_partial_slots, extra_partial_bytes / 1e6),
    ]


def test_ablation_writethrough(once, benchmark):
    rows = once(run_experiment)
    emit_table(
        "ablation_writethrough",
        ["config", "makespan_us", "partial_slots", "extra_workspace_MB"],
        rows,
        benchmark,
    )
    with_wt, without_wt = rows
    # Writethrough keeps the workspace small (Appendix D.3's 2·#CTA bound
    # depends on it) and skips contraction work for short requests.
    assert with_wt[2] < 0.4 * without_wt[2]
    assert with_wt[1] < without_wt[1]
    assert without_wt[3] > 0
