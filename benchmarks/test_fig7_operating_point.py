"""Figure 7 methodology: max sustainable rate under a latency SLO.

The paper fixes the operating point by "adjusting the request rate to
maintain P99 TTFT below 200ms".  This benchmark runs that adjustment (the
bisection in ``repro.serving.tuning``) for the FlashInfer and Triton
backends on Llama-3.1-8B/ShareGPT with a combined SLO — the paper's P99
TTFT < 200 ms plus a median ITL ceiling.  (In this engine TTFT alone is
prefill/GEMM-bound and thus backend-independent; the ITL term is where
the attention backend shows, so a pure-TTFT SLO would not discriminate.)

Shape claim: the faster attention backend sustains a strictly higher
request rate under the same SLO — the serving-capacity view of the same
gap Figure 7 shows as latency.
"""

import pytest

from conftest import emit_table
from repro.core import HeadConfig
from repro.gpu import H100_80G
from repro.serving import (
    EngineConfig,
    FlashInferBackend,
    LLAMA_3_1_8B,
    ServingEngine,
    TritonBackend,
    find_max_rate,
    sharegpt_workload,
)

MODEL = LLAMA_3_1_8B
HEADS = HeadConfig(MODEL.num_qo_heads, MODEL.num_kv_heads, MODEL.head_dim)
P99_TTFT_LIMIT = 0.2
MEDIAN_ITL_LIMIT = 0.008
NUM_REQUESTS = 300


def slo(metrics) -> bool:
    return (
        metrics.p99_ttft() <= P99_TTFT_LIMIT
        and metrics.median_itl() <= MEDIAN_ITL_LIMIT
    )


def run_experiment():
    rows = []
    for make in (FlashInferBackend, TritonBackend):
        def run_at(rate: float):
            backend = make(HEADS, H100_80G)
            engine = ServingEngine(
                MODEL, backend, H100_80G, EngineConfig(max_running=512)
            )
            return engine.run(sharegpt_workload(NUM_REQUESTS, rate, seed=0))

        op = find_max_rate(
            run_at, lo=25, hi=2000, tolerance=0.15, max_iters=6,
            constraint=slo,
        )
        s = op.metrics.summary()
        rows.append(
            (make(HEADS, H100_80G).name, op.rate, s["p99_ttft"] * 1e3,
             s["median_itl"] * 1e3, s["throughput_tok_s"])
        )
    return rows


def test_fig7_operating_point(once, benchmark):
    rows = once(run_experiment)
    emit_table(
        "fig7_operating_point",
        ["backend", "max_rate_req_s", "p99_ttft_ms", "median_itl_ms", "tokens_per_s"],
        rows,
        benchmark,
    )
    by = {r[0]: r for r in rows}
    # Both operating points respect the SLO.
    for name in ("flashinfer", "triton"):
        assert by[name][2] <= P99_TTFT_LIMIT * 1e3 * 1.02
        assert by[name][3] <= MEDIAN_ITL_LIMIT * 1e3 * 1.02
    # FlashInfer sustains a higher rate under the same SLO.
    assert by["flashinfer"][1] > 1.1 * by["triton"][1]
