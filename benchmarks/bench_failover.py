"""Failover recovery sweep: detection + migration cost per failure mode.

Not a pytest benchmark (no ``test_`` prefix): this is the perf-trajectory
harness for the failover subsystem.  It runs one fixed ShareGPT-like
workload on a dp=2 cluster, kills (or drains) replica 0 mid-run under
each failure scenario in the sweep, verifies token-exactness against the
single-GPU reference (``tokens_lost`` must be 0 — failover's whole
contract), and appends one timestamped record with recovery time,
detection time and migration traffic to ``BENCH_failover.json`` at the
repo root so successive commits build a recovery-latency trajectory.

Usage::

    PYTHONPATH=src python benchmarks/bench_failover.py
    PYTHONPATH=src python benchmarks/bench_failover.py --requests 24 --rate 150
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import subprocess

from repro.cluster import (
    ClusterConfig,
    ClusterEngine,
    FailoverConfig,
    ReplicaFailure,
    expected_tokens,
)
from repro.faults import FaultPlan
from repro.gpu import H100_80G
from repro.serving import EngineConfig, LLAMA_3_1_8B, sharegpt_workload

#: (label, failure mode, failure step, link fault schedule).
SWEEP = [
    ("crash-early", "crash", 4, ()),
    ("crash-late", "crash", 10, ()),
    ("drain", "drain", 6, ()),
    ("crash-faulty-link", "crash", 6, (0, 1)),
]

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_failover.json",
)


def run_sweep(requests, rate, seed, topology):
    model = LLAMA_3_1_8B
    workload = sharegpt_workload(requests, rate, seed=seed)
    reference = ClusterEngine(model, H100_80G, ClusterConfig()).run_reference(
        workload
    )
    expected = expected_tokens(reference)
    # No-failure baseline at the same shape: the makespan delta is the
    # end-to-end cost of the failure.
    baseline = ClusterEngine(
        model, H100_80G,
        ClusterConfig(tp=1, dp=2, topology=topology, router="least-loaded",
                      engine=EngineConfig(max_running=256)),
    ).run(workload)
    rows = []
    for label, mode, step, link_faults in SWEEP:
        cluster = ClusterEngine(
            model, H100_80G,
            ClusterConfig(
                tp=1, dp=2, topology=topology, router="least-loaded",
                engine=EngineConfig(max_running=256),
                failover=FailoverConfig(),
            ),
            replica_failures={0: ReplicaFailure(step, mode)},
            fault_plan=(
                FaultPlan(schedules={"link": link_faults})
                if link_faults else None
            ),
        )
        cm = cluster.run(workload)
        divergent, compared = cm.token_divergence(expected)
        s = cm.summary()
        rows.append({
            "scenario": label,
            "mode": mode,
            "fail_step": step,
            "detect_s": round(s["failover_detect_s"], 6),
            "recovery_s": round(s["failover_recovery_s"], 6),
            "makespan_s": round(cm.total_time, 6),
            "makespan_overhead_s": round(
                cm.total_time - baseline.total_time, 6
            ),
            "migration_pages": int(s["migration_pages"]),
            "migration_bytes": s["migration_bytes"],
            "migration_chunks": int(s["migration_chunks"]),
            "migration_retries": int(s["migration_retries"]),
            "inflight_migrated": int(s["failover_inflight_migrated"]),
            "fallbacks": int(s["failover_fallbacks"]),
            # The contract: a failover never loses a token.
            "tokens_lost": divergent,
            "streams_compared": compared,
        })
        r = rows[-1]
        print(
            f"  {label:18s}: detect {r['detect_s'] * 1e3:6.1f} ms, "
            f"recover {r['recovery_s'] * 1e3:6.1f} ms, "
            f"{r['migration_pages']:3d} pages / "
            f"{r['migration_bytes'] / 1e6:6.2f} MB migrated "
            f"({r['migration_retries']} retries), "
            f"tokens_lost {r['tokens_lost']}/{r['streams_compared']}"
        )
    return rows


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--requests", type=int, default=16)
    ap.add_argument("--rate", type=float, default=120.0)
    ap.add_argument("--seed", type=int, default=7)
    ap.add_argument("--topology", default="nvlink")
    ap.add_argument("--output", default=DEFAULT_OUTPUT)
    args = ap.parse_args()

    print(
        f"failover sweep: {args.requests} requests at {args.rate} req/s, "
        f"dp=2 least-loaded, {args.topology} topology"
    )
    rows = run_sweep(args.requests, args.rate, args.seed, args.topology)
    try:
        commit = subprocess.check_output(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(args.output), text=True,
        ).strip()
    except Exception:
        commit = "unknown"
    record = {
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "commit": commit,
        "workload": {
            "requests": args.requests, "rate": args.rate, "seed": args.seed,
            "topology": args.topology, "model": "llama-3.1-8b",
        },
        "results": rows,
    }
    history = []
    if os.path.exists(args.output):
        with open(args.output) as f:
            history = json.load(f)
    history.append(record)
    with open(args.output, "w") as f:
        json.dump(history, f, indent=2)
        f.write("\n")
    print(f"appended run #{len(history)} → {args.output}")
    return 0 if all(r["tokens_lost"] == 0 for r in rows) else 1


if __name__ == "__main__":
    raise SystemExit(main())
