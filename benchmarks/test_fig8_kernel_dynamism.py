"""Figure 8: kernel performance under input dynamism (paper §4.2).

Batch size 16; sequence length distributions constant(1024),
uniform(512–1024) and Zipf-skewed (average 1024); causal prefill.  Reports
achieved bandwidth utilization (decode) and FLOPs utilization (prefill) for
FlashInfer vs the FlashAttention2/3 library baselines.

Paper shape: FlashInfer significantly outperforms FA under uniform and
skewed distributions (load-balanced scheduler) and outperforms FA2 on
decode everywhere (tile-size selection); utilization figures use the
workload's useful traffic/FLOPs over the kernel makespan.
"""

import numpy as np
import pytest

from conftest import emit_table, make_paged_mapping
from repro import A100_40G, BatchAttentionWrapper, WorkspaceBuffer
from repro.baselines import FlashAttentionBaseline
from repro.core import HeadConfig, VANILLA
from repro.serving import constant_lengths, uniform_lengths, zipf_lengths

HEADS = HeadConfig(32, 32, 128)
BATCH = 16
GPU = A100_40G
TRIALS = 8  # random draws per distribution; FA's tail depends on batch order


def distributions(seed):
    return [
        ("constant", constant_lengths(BATCH, 1024)),
        ("uniform", uniform_lengths(BATCH, 512, 1024, seed=seed)),
        ("zipf", zipf_lengths(BATCH, 1024, seed=seed, a=1.5)),
    ]


def useful_decode_bytes(kv_lens):
    """Q + KV reads + O writes for a decode step, fp16."""
    d, hq, hkv = HEADS.head_dim, HEADS.num_qo_heads, HEADS.num_kv_heads
    kv = int(np.sum(kv_lens)) * hkv * d * 2 * 2
    qo = BATCH * hq * d * 2 * 2
    return kv + qo


def useful_prefill_flops(lens):
    """Causal attention FLOPs: 4·d per live (q, kv) position pair."""
    lens = np.asarray(lens, dtype=np.float64)
    pairs = (lens * (lens + 1) / 2).sum()
    return 4.0 * HEADS.head_dim * pairs * HEADS.num_qo_heads


def flashinfer_makespan(kv_lens, qo_lens, avg_qo):
    mapping, _ = make_paged_mapping(kv_lens, qo_lens)
    w = BatchAttentionWrapper(
        VANILLA, HEADS, WorkspaceBuffer(1 << 29), GPU, avg_qo_len=avg_qo
    )
    w.plan(mapping)
    _, _, report = w.run(None, compute=False)
    return report.makespan


def fa_makespan(kv_lens, qo_lens, version, decode, rng):
    # Random batch order: the library has no cross-request balancing, so its
    # tail depends on where the heavy requests land.
    order = rng.permutation(len(kv_lens))
    mapping, _ = make_paged_mapping(
        np.asarray(kv_lens)[order], np.asarray(qo_lens)[order]
    )
    fa = FlashAttentionBaseline(HEADS, GPU, version=version)
    _, report = fa.run(mapping, decode=decode, sparse_gather=False)
    return report.makespan


def run_experiment():
    rows = []
    rng = np.random.default_rng(42)
    for phase in ("decode", "prefill"):
        for seed in range(TRIALS):
            for dist, lens in distributions(seed):
                qo = [1] * BATCH if phase == "decode" else lens
                avg_qo = 1 if phase == "decode" else float(np.mean(lens))
                fi = flashinfer_makespan(lens, qo, avg_qo)
                fa2 = fa_makespan(lens, qo, "fa2", phase == "decode", rng)
                fa3 = fa_makespan(lens, qo, "fa3", phase == "decode", rng)
                if phase == "decode":
                    useful = useful_decode_bytes(lens)
                    peak = GPU.peak_bandwidth_bytes
                else:
                    useful = useful_prefill_flops(lens)
                    peak = GPU.peak_fp16_flops
                rows.append(
                    (phase, dist, seed, useful / fi / peak, useful / fa2 / peak,
                     useful / fa3 / peak)
                )
    return rows


def summarize(rows):
    out = []
    for phase in ("decode", "prefill"):
        for dist in ("constant", "uniform", "zipf"):
            sel = [r for r in rows if r[0] == phase and r[1] == dist]
            fi = float(np.mean([r[3] for r in sel]))
            fa2 = float(np.mean([r[4] for r in sel]))
            fa3 = float(np.mean([r[5] for r in sel]))
            metric = "BW util" if phase == "decode" else "FLOPs util"
            out.append((phase, dist, metric, fi, fa2, fa3))
    return out


def test_fig8_kernel_dynamism(once, benchmark):
    rows = once(run_experiment)
    table = summarize(rows)
    emit_table(
        "fig8_kernel_dynamism",
        ["phase", "distribution", "metric", "flashinfer", "fa2", "fa3"],
        table,
        benchmark,
    )
    by = {(r[0], r[1]): r for r in table}

    # Decode: FlashInfer beats FA2 everywhere (tile-size selection), and the
    # gap widens with skew (load balancing).
    for dist in ("constant", "uniform", "zipf"):
        phase, _, _, fi, fa2, fa3 = by[("decode", dist)]
        assert fi > fa2, f"decode/{dist}: FlashInfer {fi:.3f} <= FA2 {fa2:.3f}"
    assert by[("decode", "zipf")][3] > 1.05 * by[("decode", "zipf")][4]

    # Prefill: FlashInfer at least matches FA everywhere.  (Most of the
    # paper's prefill gap comes from kernel-side effects; the scheduling
    # component reproduced here is small because prefill has thousands of
    # blocks to balance — see EXPERIMENTS.md.)
    for dist in ("constant", "uniform", "zipf"):
        _, _, _, fi, fa2, fa3 = by[("prefill", dist)]
        assert fi > 0.97 * fa2
        assert fi > 0.97 * fa3
