"""Ablation: chunked prefill (Sarathi-serve piggybacking, paper §5.4).

Long prompts arriving mid-stream stall every running decode for their full
prefill unless the prompt is chunked and piggybacked onto decode steps.
Measures the worst decode stall and the prompt's own TTFT across chunk
sizes — the throughput-latency tradeoff Sarathi-serve targets, running on
FlashInfer's incremental-prefill (ragged-query) attention path.
"""

import numpy as np
import pytest

from conftest import emit_table
from repro.core import HeadConfig
from repro.gpu import H100_80G
from repro.serving import (
    EngineConfig,
    FlashInferBackend,
    LLAMA_3_1_8B,
    Request,
    ServingEngine,
)

MODEL = LLAMA_3_1_8B
HEADS = HeadConfig(MODEL.num_qo_heads, MODEL.num_kv_heads, MODEL.head_dim)


def run_config(chunked, chunk_size):
    reqs = [Request(0.0, 64, 300)] + [
        Request(0.2 + 0.4 * i, 16384, 8) for i in range(3)
    ]
    cfg = EngineConfig(
        num_pool_pages=1 << 15, chunked_prefill=chunked,
        prefill_chunk_size=chunk_size,
    )
    engine = ServingEngine(MODEL, FlashInferBackend(HEADS, H100_80G), H100_80G, cfg)
    m = engine.run(reqs)
    decode_stream = max(m.traces, key=lambda tr: len(tr.token_times))
    long_ttfts = [tr.ttft for tr in m.traces if tr is not decode_stream]
    return (
        float(decode_stream.itls.max()) * 1e3,
        float(np.median(decode_stream.itls)) * 1e3,
        float(np.median(long_ttfts)) * 1e3,
    )


def run_experiment():
    rows = []
    worst, med, ttft = run_config(False, 0)
    rows.append(("unchunked", worst, med, ttft))
    for chunk in (512, 1024, 4096):
        worst, med, ttft = run_config(True, chunk)
        rows.append((f"chunk={chunk}", worst, med, ttft))
    return rows


def test_ablation_chunked_prefill(once, benchmark):
    rows = once(run_experiment)
    emit_table(
        "ablation_chunked_prefill",
        ["config", "worst_decode_stall_ms", "median_itl_ms", "long_prompt_ttft_ms"],
        rows,
        benchmark,
    )
    by = {r[0]: r for r in rows}
    # Chunking bounds the worst decode stall, more tightly for smaller chunks.
    assert by["chunk=512"][1] < by["chunk=4096"][1] < by["unchunked"][1]
    assert by["unchunked"][1] > 3 * by["chunk=1024"][1]
    # The tradeoff: the long prompt's TTFT does not improve from chunking.
    assert by["chunk=512"][3] >= 0.9 * by["unchunked"][3]
